//! Parallel-pattern fault simulation with fault dropping (the HOPE role).

use std::sync::Arc;

use netlist::{Circuit, CompiledCircuit, EngineCounters, Error, LevelQueue};

use crate::fault::{Fault, FaultSite};

/// Upper bound on the number of chunks [`chunk_plan`] cuts a fault list
/// into. A function of nothing but this constant and the data, so chunk
/// boundaries — and therefore results — never depend on the thread count.
const TARGET_CHUNKS: usize = 64;

/// Per-evaluation scratch of the fault kernel: the faulty mirror, the undo
/// list, and the level-bucketed event queue. One instance per worker
/// thread — the compiled circuit itself is shared read-only, and the
/// buffers (including the queue's level buckets) persist across faults so
/// a fault costs its disturbed cone, not an allocation.
#[derive(Debug, Clone)]
struct FaultScratch {
    faulty: Vec<u64>,
    /// Nets whose faulty value currently diverges from the good value.
    touched: Vec<u32>,
    /// Scheduled flags for the event queue.
    scheduled: Vec<bool>,
    queue: LevelQueue,
    /// Events processed (nets popped off the queue), for telemetry.
    events: u64,
}

impl FaultScratch {
    fn new(cc: &CompiledCircuit) -> Self {
        FaultScratch {
            faulty: vec![0; cc.num_nets()],
            touched: Vec::new(),
            scheduled: vec![false; cc.num_nets()],
            queue: LevelQueue::new(cc.depth()),
            events: 0,
        }
    }

    #[inline]
    fn schedule(&mut self, cc: &CompiledCircuit, net: u32) {
        if !self.scheduled[net as usize] {
            self.scheduled[net as usize] = true;
            self.queue.push(cc.level_of(net), net);
        }
    }
}

/// The compiled net a fault's disturbance starts at (the stem itself, or
/// the output of the gate whose input pin is faulted).
#[inline]
fn seed_net(fault: &Fault) -> u32 {
    match fault.site {
        FaultSite::Stem(n) => n.index() as u32,
        FaultSite::Pin { gate_out, .. } => gate_out.index() as u32,
    }
}

/// Cuts `faults` into at most [`TARGET_CHUNKS`]`+1` contiguous chunks of
/// roughly equal *estimated propagation work* — the sum of each fault's
/// seed-net [`cone_mass`](CompiledCircuit::cone_mass) — and returns the
/// exclusive end offsets ([`exec::Pool::par_chunks_stealing`] format).
///
/// Equal-count chunks mis-balance badly at scale: faults near the inputs
/// disturb cones orders of magnitude larger than faults near the outputs,
/// so a count-based cut can leave one chunk holding most of the actual
/// work. Cost-based cuts keep every chunk coarse enough to amortize
/// dispatch yet similar enough in cost that workers finish together.
///
/// Deterministic: a pure function of the fault list and the artifact.
fn chunk_plan(cc: &CompiledCircuit, faults: &[Fault]) -> Vec<usize> {
    if faults.is_empty() {
        return Vec::new();
    }
    let total: u64 = faults.iter().map(|f| cc.cone_mass(seed_net(f)) as u64).sum();
    let target = total.div_ceil(TARGET_CHUNKS as u64).max(1);
    let mut ends = Vec::new();
    let mut acc = 0u64;
    for (i, f) in faults.iter().enumerate() {
        acc += cc.cone_mass(seed_net(f)) as u64;
        if acc >= target {
            ends.push(i + 1);
            acc = 0;
        }
    }
    if ends.last() != Some(&faults.len()) {
        ends.push(faults.len());
    }
    ends
}

/// Event-driven propagation of one fault over the current 64-pattern batch,
/// against shared good values. Returns the mask of patterns on which some
/// output differs; the faulty mirror in `s` is restored to `good` before
/// returning.
fn fault_effect(cc: &CompiledCircuit, good: &[u64], s: &mut FaultScratch, fault: &Fault) -> u64 {
    debug_assert!(s.touched.is_empty());
    let stuck = if fault.stuck_at { !0u64 } else { 0u64 };
    let mut diff = 0u64;

    // Seed the queue.
    let forced_pin = match fault.site {
        FaultSite::Stem(n) => {
            let i = n.index();
            if s.faulty[i] != stuck {
                s.faulty[i] = stuck;
                s.touched.push(i as u32);
                if cc.is_output(i as u32) {
                    diff |= good[i] ^ stuck;
                }
                for &f in cc.fanout(i as u32) {
                    s.schedule(cc, f);
                }
            }
            None
        }
        FaultSite::Pin { gate_out, pin } => {
            s.schedule(cc, gate_out.index() as u32);
            Some((gate_out.index() as u32, pin))
        }
    };

    let stem_net = match fault.site {
        // The stem stays forced; it cannot re-enter the queue (only its
        // strictly-upstream fanins could schedule it), but guard anyway.
        FaultSite::Stem(n) => n.index() as u32,
        _ => u32::MAX,
    };

    while let Some(n) = s.queue.pop() {
        s.scheduled[n as usize] = false;
        s.events += 1;
        if n == stem_net {
            continue;
        }
        let Some(kind) = cc.kind_of(n) else { continue };
        let fanin = cc.fanin(n);
        let new = match forced_pin {
            Some((g, pin)) if g == n => {
                CompiledCircuit::eval_gate_with_pin(kind, fanin, &s.faulty, pin, stuck)
            }
            _ => CompiledCircuit::eval_gate(kind, fanin, &s.faulty),
        };
        if new != s.faulty[n as usize] {
            if s.faulty[n as usize] == good[n as usize] {
                s.touched.push(n);
            }
            s.faulty[n as usize] = new;
            if cc.is_output(n) {
                diff |= good[n as usize] ^ new;
            }
            for &f in cc.fanout(n) {
                s.schedule(cc, f);
            }
        }
    }

    // Undo: restore the faulty mirror to the good values.
    for &n in &s.touched {
        s.faulty[n as usize] = good[n as usize];
    }
    s.touched.clear();
    diff
}

/// A 64-pattern-parallel fault simulator over a shared [`CompiledCircuit`].
///
/// For each batch of 64 input patterns it computes the good-circuit values
/// once (the engine's full-sweep kernel); every candidate fault is then
/// simulated *event-driven*: only the gates whose value actually changes
/// are re-evaluated, in topological order, which keeps per-fault cost
/// proportional to the disturbed cone rather than the whole circuit.
#[derive(Debug, Clone)]
pub struct FaultSim {
    cc: Arc<CompiledCircuit>,
    good: Vec<u64>,
    scratch: FaultScratch,
    /// Test-only fault injection: drop the first fault of every chunk but
    /// the first in the parallel path. See
    /// [`sabotage_drop_chunk_boundary`](FaultSim::sabotage_drop_chunk_boundary).
    drop_chunk_boundary: bool,
}

impl FaultSim {
    /// Compiles a fault simulator for `circuit`.
    ///
    /// # Errors
    ///
    /// Returns a netlist error if the circuit is cyclic.
    pub fn new(circuit: &Circuit) -> Result<Self, Error> {
        Ok(Self::from_compiled(Arc::new(CompiledCircuit::compile(
            circuit,
        )?)))
    }

    /// Wraps an already-compiled artifact (shares it, no recompilation).
    pub fn from_compiled(cc: Arc<CompiledCircuit>) -> Self {
        let n = cc.num_nets();
        let scratch = FaultScratch::new(&cc);
        FaultSim {
            cc,
            good: vec![0; n],
            scratch,
            drop_chunk_boundary: false,
        }
    }

    /// Test-only mutation hook (conformance mutation-kill harness): makes
    /// the parallel path silently skip the first fault of every chunk after
    /// the first — the classic off-by-one a chunked rewrite can introduce
    /// at chunk boundaries. Never call this outside fault-injection tests.
    pub fn sabotage_drop_chunk_boundary(&mut self) {
        self.drop_chunk_boundary = true;
    }

    /// The shared compiled artifact backing this simulator.
    pub fn compiled(&self) -> &Arc<CompiledCircuit> {
        &self.cc
    }

    fn run_good(&mut self, input_words: &[u64]) {
        self.cc.eval_full_into(input_words, &mut self.good);
        // Faulty mirror starts equal; fault_effect keeps it in sync through
        // the `touched` undo list.
        self.scratch.faulty.copy_from_slice(&self.good);
    }

    /// Simulates a batch of 64 patterns and returns the indices (into
    /// `faults`) of the faults detected by at least one pattern.
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len()` differs from the combinational input
    /// count.
    pub fn detect_batch(&mut self, input_words: &[u64], faults: &[Fault]) -> Vec<usize> {
        self.run_good(input_words);
        let mut detected = Vec::new();
        for (i, f) in faults.iter().enumerate() {
            if fault_effect(&self.cc, &self.good, &mut self.scratch, f) != 0 {
                detected.push(i);
            }
        }
        detected
    }

    /// Like [`detect_batch`](FaultSim::detect_batch) but distributes the
    /// fault list across `pool` in coarse work-weighted chunks with
    /// work-stealing.
    ///
    /// The good-circuit simulation runs once. The fault list is cut by
    /// [`cone_mass`](CompiledCircuit::cone_mass) into at most ~64 chunks of
    /// roughly equal estimated propagation work; each *worker* (not each
    /// chunk) owns one `FaultScratch` — faulty mirror, undo list, level
    /// queue — initialized once and reused for every chunk it steals, so
    /// the per-dispatch cost is a few atomic operations rather than an
    /// O(nets) allocation and copy. Chunk boundaries depend only on the
    /// fault list and the circuit, and every fault's effect is independent
    /// of chunk placement (the faulty mirror is restored after each fault),
    /// so the detected set is bit-identical to the sequential
    /// [`detect_batch`](FaultSim::detect_batch) for any thread count; steal
    /// order affects scheduling telemetry only.
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len()` differs from the combinational input
    /// count.
    pub fn detect_batch_par(
        &self,
        pool: &exec::Pool,
        input_words: &[u64],
        faults: &[Fault],
    ) -> Vec<usize> {
        self.detect_batch_par_counted(pool, input_words, faults).0
    }

    /// [`detect_batch_par`](FaultSim::detect_batch_par) plus the engine
    /// work counters of the run (one full sweep; one incremental
    /// propagation per fault; events summed over all chunks).
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len()` differs from the combinational input
    /// count.
    pub fn detect_batch_par_counted(
        &self,
        pool: &exec::Pool,
        input_words: &[u64],
        faults: &[Fault],
    ) -> (Vec<usize>, EngineCounters) {
        let mut good = Vec::new();
        self.cc.eval_full_into(input_words, &mut good);
        let ends = chunk_plan(&self.cc, faults);
        let cc = &self.cc;
        let good = &good;
        let sabotage = self.drop_chunk_boundary;
        let per_chunk = pool.par_chunks_stealing(
            "fsim_fault_chunks",
            faults,
            &ends,
            || {
                let mut s = FaultScratch::new(cc);
                s.faulty.copy_from_slice(good);
                s
            },
            |k, slice, scratch| {
                let base = if k == 0 { 0 } else { ends[k - 1] };
                let before = scratch.events;
                let mut detected = Vec::new();
                for (j, f) in slice.iter().enumerate() {
                    if sabotage && k > 0 && j == 0 {
                        continue;
                    }
                    if fault_effect(cc, good, scratch, f) != 0 {
                        detected.push(base + j);
                    }
                }
                (detected, scratch.events - before)
            },
        );
        let mut detected = Vec::new();
        let mut counters = EngineCounters {
            full_evals: 1,
            incremental_props: faults.len() as u64,
            events: 0,
        };
        for (d, events) in per_chunk {
            detected.extend(d);
            counters.events += events;
        }
        (detected, counters)
    }

    /// Checks whether a single pattern (booleans over the combinational
    /// inputs) detects a single fault.
    ///
    /// # Panics
    ///
    /// Panics if `pattern.len()` differs from the combinational input count.
    pub fn detects(&mut self, pattern: &[bool], fault: &Fault) -> bool {
        let words: Vec<u64> = pattern.iter().map(|&b| if b { !0 } else { 0 }).collect();
        self.run_good(&words);
        fault_effect(&self.cc, &self.good, &mut self.scratch, fault) & 1 == 1
    }

    /// Number of nets in the compiled circuit.
    pub fn num_nets(&self) -> usize {
        self.cc.num_nets()
    }

    #[cfg(test)]
    fn good_value(&self, net: netlist::NetId) -> u64 {
        self.good[net.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;
    use netlist::{GateKind, Levelization};

    /// Reference implementation: full resimulation with the fault injected.
    fn full_resim_effect(c: &Circuit, input_words: &[u64], fault: &Fault) -> u64 {
        let lv = Levelization::build(c).unwrap();
        let eval = |values: &mut Vec<u64>, fault: Option<&Fault>| {
            for &id in lv.order() {
                if let Some(g) = c.gate(id) {
                    if let Some(Fault {
                        site: FaultSite::Stem(n),
                        ..
                    }) = fault
                    {
                        if *n == id {
                            continue;
                        }
                    }
                    let mut vals: Vec<u64> =
                        g.fanin.iter().map(|f| values[f.index()]).collect();
                    if let Some(Fault {
                        site: FaultSite::Pin { gate_out, pin },
                        stuck_at,
                    }) = fault
                    {
                        if *gate_out == id {
                            vals[*pin] = if *stuck_at { !0 } else { 0 };
                        }
                    }
                    values[id.index()] = match g.kind {
                        GateKind::And => vals.iter().fold(!0u64, |a, &x| a & x),
                        GateKind::Nand => !vals.iter().fold(!0u64, |a, &x| a & x),
                        GateKind::Or => vals.iter().fold(0u64, |a, &x| a | x),
                        GateKind::Nor => !vals.iter().fold(0u64, |a, &x| a | x),
                        GateKind::Xor => vals.iter().fold(0u64, |a, &x| a ^ x),
                        GateKind::Xnor => !vals.iter().fold(0u64, |a, &x| a ^ x),
                        GateKind::Not => !vals[0],
                        GateKind::Buf => vals[0],
                        GateKind::Const0 => 0,
                        GateKind::Const1 => !0,
                    };
                }
            }
        };
        let mut good = vec![0u64; c.num_nets()];
        for (net, &w) in c.comb_inputs().iter().zip(input_words) {
            good[net.index()] = w;
        }
        eval(&mut good, None);
        let mut bad = vec![0u64; c.num_nets()];
        for (net, &w) in c.comb_inputs().iter().zip(input_words) {
            bad[net.index()] = w;
        }
        if let FaultSite::Stem(n) = fault.site {
            bad[n.index()] = if fault.stuck_at { !0 } else { 0 };
        }
        eval(&mut bad, Some(fault));
        if let FaultSite::Stem(n) = fault.site {
            bad[n.index()] = if fault.stuck_at { !0 } else { 0 };
        }
        let mut diff = 0u64;
        for o in c.comb_outputs() {
            diff |= good[o.index()] ^ bad[o.index()];
        }
        diff
    }

    #[test]
    fn event_driven_matches_full_resimulation() {
        let mut rng = netlist::rng::SplitMix64::new(17);
        for seed in 0..6 {
            let c = netlist::generate::random_comb(seed, 10, 6, 150).unwrap();
            let faults = crate::collapse(&c, crate::enumerate_faults(&c));
            let mut sim = FaultSim::new(&c).unwrap();
            let words: Vec<u64> = (0..10).map(|_| rng.next_u64()).collect();
            sim.run_good(&words);
            for f in &faults {
                let fast = fault_effect(&sim.cc, &sim.good, &mut sim.scratch, f);
                let slow = full_resim_effect(&c, &words, f);
                assert_eq!(fast, slow, "fault {f} in seed-{seed} circuit");
            }
        }
    }

    #[test]
    fn faulty_mirror_restored_between_faults() {
        let c = samples::c17();
        let faults = crate::collapse(&c, crate::enumerate_faults(&c));
        let mut sim = FaultSim::new(&c).unwrap();
        let words = vec![0xDEAD_BEEFu64; 5];
        sim.run_good(&words);
        for f in &faults {
            let _ = fault_effect(&sim.cc, &sim.good, &mut sim.scratch, f);
            assert_eq!(
                sim.scratch.faulty, sim.good,
                "mirror must be restored after {f}"
            );
        }
    }

    #[test]
    fn input_fault_requires_sensitized_path() {
        // y = AND(a, b): a/sa0 only detectable when a=1 AND b=1.
        let mut c = netlist::Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let y = c.add_gate(GateKind::And, vec![a, b], "y").unwrap();
        c.mark_output(y);
        let mut sim = FaultSim::new(&c).unwrap();
        let f = Fault::stem_sa0(a);
        assert!(sim.detects(&[true, true], &f));
        assert!(!sim.detects(&[true, false], &f));
        assert!(!sim.detects(&[false, true], &f));
    }

    #[test]
    fn pin_fault_affects_only_one_branch() {
        let mut c = netlist::Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g1 = c.add_gate(GateKind::And, vec![a, b], "g1").unwrap();
        let g2 = c.add_gate(GateKind::Or, vec![a, b], "g2").unwrap();
        c.mark_output(g1);
        c.mark_output(g2);
        let mut sim = FaultSim::new(&c).unwrap();
        let pin_fault = Fault {
            site: FaultSite::Pin { gate_out: g1, pin: 0 },
            stuck_at: false,
        };
        let words = vec![!0u64, !0u64];
        sim.run_good(&words);
        let diff = fault_effect(&sim.cc, &sim.good, &mut sim.scratch, &pin_fault);
        assert_eq!(diff, !0u64);
        let _ = sim.good_value(g2);
    }

    #[test]
    fn stem_fault_affects_all_branches() {
        let mut c = netlist::Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g1 = c.add_gate(GateKind::And, vec![a, b], "g1").unwrap();
        let g2 = c.add_gate(GateKind::Or, vec![a, b], "g2").unwrap();
        c.mark_output(g1);
        c.mark_output(g2);
        let mut sim = FaultSim::new(&c).unwrap();
        let f = Fault::stem_sa0(a);
        let words = vec![!0u64, 0u64];
        sim.run_good(&words);
        let diff = fault_effect(&sim.cc, &sim.good, &mut sim.scratch, &f);
        assert_eq!(diff, !0u64);
    }

    #[test]
    fn detect_batch_par_identical_for_1_2_8_threads() {
        let mut rng = netlist::rng::SplitMix64::new(23);
        for seed in 0..3 {
            let c = netlist::generate::random_comb(seed, 10, 6, 200).unwrap();
            let faults = crate::collapse(&c, crate::enumerate_faults(&c));
            let mut sim = FaultSim::new(&c).unwrap();
            let words: Vec<u64> = (0..10).map(|_| rng.next_u64()).collect();
            let sequential = sim.detect_batch(&words, &faults);
            for threads in [1, 2, 8] {
                let pool = exec::Pool::with_threads(threads);
                let par = sim.detect_batch_par(&pool, &words, &faults);
                assert_eq!(par, sequential, "seed {seed}, {threads} threads");
            }
        }
    }

    #[test]
    fn par_counters_are_thread_invariant() {
        let c = netlist::generate::random_comb(5, 10, 6, 200).unwrap();
        let faults = crate::collapse(&c, crate::enumerate_faults(&c));
        let sim = FaultSim::new(&c).unwrap();
        let words = vec![0x0123_4567_89AB_CDEFu64; 10];
        let mut seen = Vec::new();
        for threads in [1, 2, 8] {
            let pool = exec::Pool::with_threads(threads);
            let (_, counters) = sim.detect_batch_par_counted(&pool, &words, &faults);
            assert_eq!(counters.full_evals, 1);
            assert_eq!(counters.incremental_props, faults.len() as u64);
            assert!(counters.events > 0);
            seen.push(counters);
        }
        assert_eq!(seen[0], seen[1]);
        assert_eq!(seen[1], seen[2]);
    }

    #[test]
    fn chunk_plan_covers_faults_with_bounded_chunk_count() {
        let c = netlist::generate::random_comb(31, 12, 6, 400).unwrap();
        let faults = crate::collapse(&c, crate::enumerate_faults(&c));
        let cc = CompiledCircuit::compile(&c).unwrap();
        let ends = chunk_plan(&cc, &faults);
        assert_eq!(*ends.last().unwrap(), faults.len());
        assert!(ends.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
        assert!(ends.len() <= TARGET_CHUNKS + 1, "{} chunks", ends.len());
        // Same inputs, same plan.
        assert_eq!(ends, chunk_plan(&cc, &faults));
        // Empty fault list: empty plan.
        assert!(chunk_plan(&cc, &[]).is_empty());
    }

    #[test]
    fn chunk_plan_balances_by_cone_mass_not_count() {
        // A long inverter chain: the fault at the head has a cone as large
        // as the whole chain, faults at the tail have tiny cones. A
        // count-based cut would put equally many faults per chunk; the
        // mass-based cut must give the head faults fewer companions.
        let mut c = netlist::Circuit::new("chain");
        let mut prev = c.add_input("i");
        let mut nets = vec![prev];
        for k in 0..256 {
            prev = c.add_gate(GateKind::Not, vec![prev], format!("g{k}")).unwrap();
            nets.push(prev);
        }
        c.mark_output(prev);
        let cc = CompiledCircuit::compile(&c).unwrap();
        let faults: Vec<Fault> = nets.iter().map(|&n| Fault::stem_sa0(n)).collect();
        let ends = chunk_plan(&cc, &faults);
        let first_chunk = ends[0];
        let last_chunk = ends[ends.len() - 1] - ends[ends.len() - 2];
        assert!(
            first_chunk < last_chunk,
            "head chunk ({first_chunk} faults) must be smaller than tail ({last_chunk})"
        );
    }

    #[test]
    fn sabotaged_chunk_boundary_changes_parallel_detection() {
        let c = netlist::generate::random_comb(3, 10, 6, 300).unwrap();
        let faults = crate::collapse(&c, crate::enumerate_faults(&c));
        let mut sim = FaultSim::new(&c).unwrap();
        let words = vec![0x5A5A_F00D_1234_8765u64; 10];
        let pool = exec::Pool::with_threads(2);
        let clean = sim.detect_batch_par(&pool, &words, &faults);
        sim.sabotage_drop_chunk_boundary();
        let broken = sim.detect_batch_par(&pool, &words, &faults);
        assert_ne!(clean, broken, "dropped boundary faults must be observable");
    }

    #[test]
    fn detect_batch_matches_single_pattern_checks() {
        let c = samples::full_adder();
        let faults = crate::collapse(&c, crate::enumerate_faults(&c));
        let mut sim = FaultSim::new(&c).unwrap();
        let mut words = vec![0u64; 3];
        for m in 0..8u64 {
            for (i, w) in words.iter_mut().enumerate() {
                if (m >> i) & 1 == 1 {
                    *w |= 1 << m;
                }
            }
        }
        let batch = sim.detect_batch(&words, &faults);
        for (i, f) in faults.iter().enumerate() {
            let mut single = false;
            for m in 0..8u64 {
                let pattern: Vec<bool> = (0..3).map(|k| (m >> k) & 1 == 1).collect();
                if sim.detects(&pattern, f) {
                    single = true;
                    break;
                }
            }
            assert_eq!(batch.contains(&i), single, "fault {f}");
        }
    }
}
