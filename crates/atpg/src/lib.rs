//! Stuck-at-fault test generation and fault simulation — the workspace's
//! stand-in for the Atalanta ATPG tool and the HOPE fault simulator used in
//! the paper's Table II.
//!
//! - [`fault`]: the single-stuck-at fault model (stem and gate-input-pin
//!   faults) with classic equivalence collapsing.
//! - [`fsim`]: 64-pattern-parallel fault simulation with fault dropping.
//! - [`podem`]: PODEM test generation with a backtrack limit; exhausted
//!   search proves redundancy, a hit limit aborts the fault (exactly the
//!   Atalanta outcome classes Table II reports).
//! - [`run_atpg`]: the full flow the paper used — random-pattern fault
//!   simulation first (HOPE prefiltering, as done for b18/b19), PODEM for
//!   the survivors, coverage bookkeeping.
//!
//! # Example
//!
//! ```
//! use atpg::{run_atpg, AtpgConfig};
//! use netlist::samples;
//!
//! let c = samples::c17();
//! let report = run_atpg(&c, &AtpgConfig::default()).expect("acyclic");
//! assert!(report.coverage_percent() > 99.0); // c17 is fully testable
//! assert_eq!(report.redundant, 0);
//! ```

#![warn(missing_docs)]

pub mod fault;
pub mod fsim;
pub mod podem;

pub use fault::{collapse, enumerate_faults, Fault, FaultSite};
pub use fsim::FaultSim;

use netlist::{Circuit, Error};

/// Configuration of the ATPG flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtpgConfig {
    /// Random patterns simulated before deterministic generation.
    pub random_patterns: usize,
    /// PODEM backtrack limit per fault ("high effort" in the paper ≈ large).
    pub backtrack_limit: usize,
    /// PRNG seed for the random phase.
    pub seed: u64,
}

impl Default for AtpgConfig {
    fn default() -> Self {
        AtpgConfig {
            random_patterns: 1024,
            backtrack_limit: 5000,
            seed: 0xA7B6,
        }
    }
}

/// Outcome of the ATPG flow, in the terms Table II reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtpgReport {
    /// Total (collapsed) faults targeted.
    pub total_faults: usize,
    /// Faults detected by some test.
    pub detected: usize,
    /// Faults proven untestable (no test exists).
    pub redundant: usize,
    /// Faults abandoned at the backtrack limit.
    pub aborted: usize,
    /// The deterministic (PODEM-generated) test set, one input assignment
    /// per entry over the combinational inputs. Faults detected in the
    /// random phase are counted but their patterns are not stored.
    pub tests: Vec<Vec<bool>>,
}

impl AtpgReport {
    /// Fault coverage in percent: `detected / total`.
    pub fn coverage_percent(&self) -> f64 {
        if self.total_faults == 0 {
            return 100.0;
        }
        100.0 * self.detected as f64 / self.total_faults as f64
    }

    /// The paper's "# Red.+Abrt faults" column.
    pub fn redundant_plus_aborted(&self) -> usize {
        self.redundant + self.aborted
    }
}

/// Runs the full ATPG flow on the combinational part of `circuit`.
///
/// # Errors
///
/// Returns a netlist error if the circuit is cyclic.
pub fn run_atpg(circuit: &Circuit, config: &AtpgConfig) -> Result<AtpgReport, Error> {
    // One compiled artifact shared by the fault simulator and PODEM: the
    // circuit is levelized exactly once for the whole flow.
    let cc = std::sync::Arc::new(netlist::CompiledCircuit::compile(circuit)?);
    run_atpg_compiled(circuit, cc, config)
}

/// [`run_atpg`] over an already-compiled artifact of `circuit`, for callers
/// (such as a serving layer with a content-hashed artifact cache) that hold
/// the shared `Arc<CompiledCircuit>` and must not pay a second compile.
///
/// The artifact must be the compilation of `circuit`.
///
/// # Errors
///
/// Returns a netlist error if the circuit is cyclic.
pub fn run_atpg_compiled(
    circuit: &Circuit,
    cc: std::sync::Arc<netlist::CompiledCircuit>,
    config: &AtpgConfig,
) -> Result<AtpgReport, Error> {
    let pool = exec::global();
    let faults = collapse(circuit, enumerate_faults(circuit));
    let total = faults.len();
    let sim = fsim::FaultSim::from_compiled(std::sync::Arc::clone(&cc));
    let mut alive: Vec<Fault> = faults;
    let mut tests: Vec<Vec<bool>> = Vec::new();

    // Phase 1: random patterns (HOPE prefilter), fault-parallel per batch.
    let mut rng = netlist::rng::SplitMix64::new(config.seed);
    let n_in = circuit.comb_inputs().len();
    let words = config.random_patterns.div_ceil(64);
    for _ in 0..words {
        let input: Vec<u64> = (0..n_in).map(|_| rng.next_u64()).collect();
        let detected = sim.detect_batch_par(pool, &input, &alive);
        let det_set: std::collections::HashSet<usize> = detected.into_iter().collect();
        if !det_set.is_empty() {
            let mut next = Vec::with_capacity(alive.len());
            for (i, f) in alive.drain(..).enumerate() {
                if !det_set.contains(&i) {
                    next.push(f);
                }
            }
            alive = next;
        }
        if alive.is_empty() {
            break;
        }
    }
    let detected_random = total - alive.len();

    // Phase 2: PODEM on the survivors, dropping further faults with each
    // successful test.
    let mut podem_gen = podem::Podem::from_compiled(cc, config.backtrack_limit);
    let mut detected_det = 0usize;
    let mut redundant = 0usize;
    let mut aborted = 0usize;
    while !alive.is_empty() {
        let fault = alive[0].clone();
        match podem_gen.generate(&fault) {
            podem::Outcome::Test(pattern) => {
                // Fault-simulate the new pattern to drop other faults too.
                let words: Vec<u64> = pattern.iter().map(|&b| if b { !0 } else { 0 }).collect();
                let detected = sim.detect_batch_par(pool, &words, &alive);
                let det_set: std::collections::HashSet<usize> = detected.into_iter().collect();
                debug_assert!(
                    det_set.contains(&0),
                    "PODEM test must detect its target fault"
                );
                detected_det += det_set.len().max(1);
                tests.push(pattern);
                let mut next = Vec::with_capacity(alive.len());
                for (j, f) in alive.drain(..).enumerate() {
                    if !det_set.contains(&j) && j != 0 {
                        next.push(f);
                    }
                }
                alive = next;
            }
            podem::Outcome::Redundant => {
                redundant += 1;
                alive.remove(0);
            }
            podem::Outcome::Aborted => {
                aborted += 1;
                alive.remove(0);
            }
        }
    }

    Ok(AtpgReport {
        total_faults: total,
        detected: detected_random + detected_det,
        redundant,
        aborted,
        tests,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;

    #[test]
    fn c17_full_coverage() {
        let rep = run_atpg(&samples::c17(), &AtpgConfig::default()).unwrap();
        assert_eq!(rep.redundant, 0, "c17 has no redundant faults");
        assert_eq!(rep.aborted, 0);
        assert_eq!(rep.detected, rep.total_faults);
        assert!((rep.coverage_percent() - 100.0).abs() < f64::EPSILON);
    }

    #[test]
    fn adder_full_coverage() {
        let rep = run_atpg(&samples::ripple_adder(4), &AtpgConfig::default()).unwrap();
        assert_eq!(rep.detected + rep.redundant + rep.aborted, rep.total_faults);
        assert!(rep.coverage_percent() > 99.0, "{}", rep.coverage_percent());
    }

    #[test]
    fn redundant_logic_is_proven_redundant() {
        // y = a & (a | b): the `b` input of the OR is unobservable
        // (a & (a|b) == a), so its faults are redundant.
        let mut c = netlist::Circuit::new("red");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let o = c.add_gate(netlist::GateKind::Or, vec![a, b], "o").unwrap();
        let y = c.add_gate(netlist::GateKind::And, vec![a, o], "y").unwrap();
        c.mark_output(y);
        let rep = run_atpg(&c, &AtpgConfig::default()).unwrap();
        assert!(rep.redundant > 0, "expected redundant faults, got {rep:?}");
        assert_eq!(rep.aborted, 0);
        assert_eq!(rep.detected + rep.redundant, rep.total_faults);
    }

    #[test]
    fn synthetic_benchmark_coverage_accounted() {
        // Random reconvergent logic carries genuinely redundant faults
        // (~15% for this generator — every "redundant" verdict on this
        // circuit was verified exhaustively while developing the solver), so
        // coverage sits below designed-logic levels but every fault must be
        // classified and nothing may abort at this size.
        let c = netlist::generate::random_comb(77, 12, 6, 300).unwrap();
        let rep = run_atpg(&c, &AtpgConfig::default()).unwrap();
        assert!(
            rep.coverage_percent() > 75.0,
            "coverage {}",
            rep.coverage_percent()
        );
        assert_eq!(rep.aborted, 0);
        assert_eq!(rep.detected + rep.redundant, rep.total_faults);
    }

    #[test]
    fn accounting_adds_up() {
        let c = netlist::generate::random_comb(3, 8, 4, 120).unwrap();
        let rep = run_atpg(&c, &AtpgConfig::default()).unwrap();
        assert_eq!(rep.detected + rep.redundant + rep.aborted, rep.total_faults);
        assert_eq!(
            rep.redundant_plus_aborted(),
            rep.redundant + rep.aborted
        );
    }

    #[test]
    fn zero_random_patterns_still_works() {
        let cfg = AtpgConfig {
            random_patterns: 0,
            ..AtpgConfig::default()
        };
        let rep = run_atpg(&samples::c17(), &cfg).unwrap();
        assert_eq!(rep.detected, rep.total_faults);
    }
}
