//! The single-stuck-at fault model and equivalence collapsing.

use netlist::{Circuit, GateKind, NetId};

/// Where a stuck-at fault sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// On a net's stem (affects every reader of the net).
    Stem(NetId),
    /// On one input pin of the gate driving `gate_out` (affects only that
    /// gate's view of its `pin`-th fanin). Pin faults are distinct from stem
    /// faults only where the fanin net has fanout > 1.
    Pin {
        /// Output net of the gate whose input pin is faulty.
        gate_out: NetId,
        /// Fanin position.
        pin: usize,
    },
}

/// A single stuck-at fault.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fault {
    /// Location.
    pub site: FaultSite,
    /// Stuck value: `true` = stuck-at-1.
    pub stuck_at: bool,
}

impl Fault {
    /// Stuck-at-0 at a stem.
    pub fn stem_sa0(net: NetId) -> Self {
        Fault {
            site: FaultSite::Stem(net),
            stuck_at: false,
        }
    }

    /// Stuck-at-1 at a stem.
    pub fn stem_sa1(net: NetId) -> Self {
        Fault {
            site: FaultSite::Stem(net),
            stuck_at: true,
        }
    }
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let v = u8::from(self.stuck_at);
        match self.site {
            FaultSite::Stem(n) => write!(f, "{n}/sa{v}"),
            FaultSite::Pin { gate_out, pin } => write!(f, "{gate_out}.pin{pin}/sa{v}"),
        }
    }
}

/// Enumerates the full (uncollapsed) fault universe of the combinational
/// part: both stuck values on every net stem and on every gate input pin.
pub fn enumerate_faults(circuit: &Circuit) -> Vec<Fault> {
    let mut faults = Vec::new();
    for id in circuit.net_ids() {
        for v in [false, true] {
            faults.push(Fault {
                site: FaultSite::Stem(id),
                stuck_at: v,
            });
        }
        if let Some(g) = circuit.gate(id) {
            for pin in 0..g.fanin.len() {
                for v in [false, true] {
                    faults.push(Fault {
                        site: FaultSite::Pin { gate_out: id, pin },
                        stuck_at: v,
                    });
                }
            }
        }
    }
    faults
}

/// Classic gate-local equivalence collapsing:
///
/// - a pin fault on a single-fanout net is equivalent to the stem fault;
/// - AND: input s-a-0 ≡ output s-a-0 (NAND: ≡ output s-a-1);
/// - OR: input s-a-1 ≡ output s-a-1 (NOR: ≡ output s-a-0);
/// - NOT/BUF: both pin faults are equivalent to an output fault.
///
/// The representative kept is always the stem/output fault.
pub fn collapse(circuit: &Circuit, faults: Vec<Fault>) -> Vec<Fault> {
    let fanouts = circuit.fanouts();
    let fanout_count = |n: NetId| {
        let mut c = fanouts[n.index()].len();
        if circuit.primary_outputs().contains(&n) {
            c += 1;
        }
        if circuit.dffs().iter().any(|d| d.d == n) {
            c += 1;
        }
        c
    };
    faults
        .into_iter()
        .filter(|f| {
            let FaultSite::Pin { gate_out, pin } = f.site else {
                return true; // keep all stem faults
            };
            let g = circuit.gate(gate_out).expect("pin fault implies a gate");
            let fanin_net = g.fanin[pin];
            // Single-fanout fanin: pin fault ≡ stem fault of the fanin.
            if fanout_count(fanin_net) <= 1 {
                return false;
            }
            // Controlling-value equivalences.
            match g.kind {
                GateKind::And | GateKind::Nand => f.stuck_at, // drop s-a-0
                GateKind::Or | GateKind::Nor => !f.stuck_at,  // drop s-a-1
                GateKind::Not | GateKind::Buf => false,       // ≡ output fault
                _ => true,                                    // XOR family: keep
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;

    #[test]
    fn enumeration_counts() {
        // c17: 11 nets (5 PI + 6 gates), 12 gate input pins (6 NAND2).
        let c = samples::c17();
        let faults = enumerate_faults(&c);
        assert_eq!(faults.len(), 2 * 11 + 2 * 12);
    }

    #[test]
    fn collapsing_shrinks_but_keeps_stems() {
        let c = samples::c17();
        let all = enumerate_faults(&c);
        let collapsed = collapse(&c, all.clone());
        assert!(collapsed.len() < all.len());
        for id in c.net_ids() {
            assert!(collapsed.contains(&Fault::stem_sa0(id)));
            assert!(collapsed.contains(&Fault::stem_sa1(id)));
        }
    }

    #[test]
    fn nand_input_sa0_collapsed() {
        let c = samples::c17();
        let collapsed = collapse(&c, enumerate_faults(&c));
        for f in &collapsed {
            if let FaultSite::Pin { gate_out, .. } = f.site {
                let g = c.gate(gate_out).unwrap();
                assert_eq!(g.kind, GateKind::Nand);
                assert!(f.stuck_at, "NAND input s-a-0 should be collapsed: {f}");
            }
        }
    }

    #[test]
    fn single_fanout_pins_dropped() {
        // y = NOT(a): the NOT's pin fault is equivalent to a's stem fault.
        let mut c = netlist::Circuit::new("t");
        let a = c.add_input("a");
        let y = c.add_gate(GateKind::Not, vec![a], "y").unwrap();
        c.mark_output(y);
        let collapsed = collapse(&c, enumerate_faults(&c));
        assert!(collapsed
            .iter()
            .all(|f| matches!(f.site, FaultSite::Stem(_))));
        assert_eq!(collapsed.len(), 4);
    }

    #[test]
    fn display_forms() {
        let f = Fault::stem_sa1(NetId::from_index(3));
        assert_eq!(f.to_string(), "n3/sa1");
        let p = Fault {
            site: FaultSite::Pin {
                gate_out: NetId::from_index(4),
                pin: 1,
            },
            stuck_at: false,
        };
        assert_eq!(p.to_string(), "n4.pin1/sa0");
    }
}
