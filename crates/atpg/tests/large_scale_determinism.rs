//! Thread-count determinism of the chunked-parallel fault simulator at the
//! 10⁵-gate tier: the detected-fault set (and the engine work counters)
//! must be bit-identical across 1, 2 and 8 worker threads, and identical
//! to the sequential path — chunk placement and steal order are scheduling
//! details, never semantics.

use std::sync::Arc;

use atpg::{Fault, FaultSim};
use netlist::generate::{profile, synthesize_compiled, BenchmarkId};
use netlist::rng::SplitMix64;
use netlist::NetId;

/// Samples stem faults over the driven nets with a fixed stride so the
/// fault list spans the whole circuit (shallow and deep cones alike).
fn sampled_stem_faults(cc: &netlist::CompiledCircuit, count: usize) -> Vec<Fault> {
    let driven: Vec<u32> = (0..cc.num_nets() as u32)
        .filter(|&n| cc.kind_of(n).is_some())
        .collect();
    let stride = (driven.len() / count).max(1);
    driven
        .iter()
        .step_by(stride)
        .take(count)
        .enumerate()
        .map(|(i, &n)| {
            let net = NetId::from_index(n as usize);
            if i % 2 == 0 {
                Fault::stem_sa0(net)
            } else {
                Fault::stem_sa1(net)
            }
        })
        .collect()
}

#[test]
fn detected_sets_identical_across_1_2_8_threads_at_1e5_gates() {
    let p = profile(BenchmarkId::B18).scaled_to_gates(100_000);
    let cc = Arc::new(synthesize_compiled(&p).expect("synthesizable at 1e5 gates"));
    assert!(cc.num_nets() >= 100_000, "scaling tier circuit too small");

    let faults = sampled_stem_faults(&cc, 300);
    let mut sim = FaultSim::from_compiled(Arc::clone(&cc));
    let mut rng = SplitMix64::new(0x1E5_0AB);
    let words: Vec<u64> = (0..cc.inputs().len()).map(|_| rng.next_u64()).collect();

    let seq = sim.detect_batch(&words, &faults);
    assert!(
        !seq.is_empty() && seq.len() < faults.len(),
        "detection must be nontrivial to be a meaningful determinism probe \
         (got {}/{})",
        seq.len(),
        faults.len()
    );

    let (ref_par, ref_counters) =
        sim.detect_batch_par_counted(&exec::Pool::with_threads(1), &words, &faults);
    assert_eq!(ref_par, seq, "parallel path diverged from sequential");
    for threads in [2usize, 8] {
        let pool = exec::Pool::with_threads(threads);
        let (par, counters) = sim.detect_batch_par_counted(&pool, &words, &faults);
        assert_eq!(par, seq, "detected set diverged on {threads} threads");
        assert_eq!(
            counters, ref_counters,
            "engine counters diverged on {threads} threads"
        );
    }
}
