//! Deterministic value generators and their shrinking rules.
//!
//! A [`Gen`] produces values from the workspace's stable
//! [`SplitMix64`] stream, so every generated case
//! is reproducible from a single `u64` seed — that seed is what the runner
//! persists in `.qcheck-regressions` when a property fails.
//!
//! Plain range expressions implement `Gen` directly, so strategies read the
//! same as the `proptest` call sites they replace:
//!
//! ```
//! use qcheck::Gen;
//! let mut rng = netlist::rng::SplitMix64::new(1);
//! let gen = (0u64..5000, 3usize..10);
//! let (seed, inputs) = gen.generate(&mut rng);
//! assert!(seed < 5000 && (3..10).contains(&inputs));
//! ```

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use netlist::rng::SplitMix64;

/// A deterministic generator of test values with an attached shrinking rule.
pub trait Gen {
    /// The type of value this generator produces.
    type Value: Clone + Debug;

    /// Draws one value from the generator using `rng`.
    fn generate(&self, rng: &mut SplitMix64) -> Self::Value;

    /// Proposes strictly "smaller" variants of `value` to try during
    /// counterexample minimization. Returning an empty vector ends the
    /// shrink search at `value`.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }
}

/// Blanket impl so `&gen` works wherever `gen` does.
impl<G: Gen + ?Sized> Gen for &G {
    type Value = G::Value;

    fn generate(&self, rng: &mut SplitMix64) -> Self::Value {
        (**self).generate(rng)
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

/// Shrink candidates for an unsigned value toward `lo`: the minimum itself,
/// then repeated halvings of the distance, then the immediate predecessor.
fn shrink_toward(lo: u128, v: u128) -> Vec<u128> {
    if v <= lo {
        return Vec::new();
    }
    let mut out = vec![lo];
    let mut delta = (v - lo) / 2;
    while delta > 0 {
        let cand = v - delta;
        if cand != lo && !out.contains(&cand) {
            out.push(cand);
        }
        delta /= 2;
    }
    if v - 1 != lo && !out.contains(&(v - 1)) {
        out.push(v - 1);
    }
    out
}

macro_rules! impl_gen_for_uint_ranges {
    ($($t:ty),+) => {$(
        impl Gen for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SplitMix64) -> $t {
                assert!(self.start < self.end, "empty range {:?}", self);
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(self.start as u128, *value as u128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }

        impl Gen for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SplitMix64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range {:?}", self);
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(*self.start() as u128, *value as u128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
    )+};
}

impl_gen_for_uint_ranges!(u8, u16, u32, u64, usize);

/// Generator for uniform booleans; `true` shrinks to `false`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Gen for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut SplitMix64) -> bool {
        rng.bool()
    }

    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Uniform boolean generator (the `any::<bool>()` of this harness).
pub fn any_bool() -> AnyBool {
    AnyBool
}

/// Uniform `u8` over the full range (the `any::<u8>()` of this harness).
pub fn any_u8() -> RangeInclusive<u8> {
    0..=u8::MAX
}

/// Uniform `u64` over the full range.
pub fn any_u64() -> RangeInclusive<u64> {
    0..=u64::MAX
}

/// Size specification for [`vec_of`]: a fixed `usize` or a half-open
/// `Range<usize>` of lengths.
pub trait IntoSizeRange {
    /// Returns the inclusive `(min, max)` length bounds.
    fn bounds(self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(self) -> (usize, usize) {
        (self, self)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(self) -> (usize, usize) {
        assert!(self.start < self.end, "empty length range {self:?}");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn bounds(self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty length range {self:?}");
        (*self.start(), *self.end())
    }
}

/// Generator for vectors of values from an element generator.
#[derive(Debug, Clone)]
pub struct VecGen<G> {
    elem: G,
    min_len: usize,
    max_len: usize,
}

/// Vectors of `len` elements from `elem`; `len` is a fixed `usize` or a
/// range of lengths (mirrors `proptest::collection::vec`).
pub fn vec_of<G: Gen>(elem: G, len: impl IntoSizeRange) -> VecGen<G> {
    let (min_len, max_len) = len.bounds();
    VecGen {
        elem,
        min_len,
        max_len,
    }
}

/// Above this length, per-index shrink candidates are skipped (quadratic
/// cost) and only truncation is attempted.
const VEC_ELEMENTWISE_SHRINK_LIMIT: usize = 64;

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut SplitMix64) -> Vec<G::Value> {
        let len = if self.min_len == self.max_len {
            self.min_len
        } else {
            self.min_len + rng.below((self.max_len - self.min_len + 1) as u64) as usize
        };
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let mut out = Vec::new();
        // Length shrinks first: halve toward the minimum, drop the tail
        // element, then drop each single element.
        if value.len() > self.min_len {
            let half = (value.len() / 2).max(self.min_len);
            if half < value.len() {
                out.push(value[..half].to_vec());
            }
            out.push(value[..value.len() - 1].to_vec());
            if value.len() <= VEC_ELEMENTWISE_SHRINK_LIMIT {
                for i in 0..value.len().saturating_sub(1) {
                    let mut v = value.clone();
                    v.remove(i);
                    out.push(v);
                }
            }
        }
        // Element shrinks: replace one position with its first (smallest)
        // shrink candidate.
        if value.len() <= VEC_ELEMENTWISE_SHRINK_LIMIT {
            for (i, elem) in value.iter().enumerate() {
                for cand in self.elem.shrink(elem).into_iter().take(2) {
                    let mut v = value.clone();
                    v[i] = cand;
                    out.push(v);
                }
            }
        } else {
            // Long vectors: shrink a bounded prefix of positions so the
            // candidate list stays linear in the limit, not the length.
            for (i, elem) in value.iter().enumerate().take(VEC_ELEMENTWISE_SHRINK_LIMIT) {
                if let Some(cand) = self.elem.shrink(elem).into_iter().next() {
                    let mut v = value.clone();
                    v[i] = cand;
                    out.push(v);
                }
            }
        }
        out
    }
}

macro_rules! impl_gen_for_tuples {
    ($( ($($g:ident / $idx:tt),+) )+) => {$(
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);

            fn generate(&self, rng: &mut SplitMix64) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = cand;
                        out.push(v);
                    }
                )+
                out
            }
        }
    )+};
}

impl_gen_for_tuples! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..2_000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (3usize..4).generate(&mut rng);
            assert_eq!(w, 3);
            let b = (5u8..=9).generate(&mut rng);
            assert!((5..=9).contains(&b));
        }
    }

    #[test]
    fn range_shrink_moves_toward_start() {
        let g = 10u64..100;
        let cands = g.shrink(&57);
        assert!(cands.contains(&10), "minimum is always a candidate");
        assert!(cands.iter().all(|&c| (10..57).contains(&c)));
        assert!(g.shrink(&10).is_empty(), "minimum does not shrink");
    }

    #[test]
    fn bool_shrinks_to_false() {
        assert_eq!(AnyBool.shrink(&true), vec![false]);
        assert!(AnyBool.shrink(&false).is_empty());
    }

    #[test]
    fn vec_lengths_respect_spec() {
        let mut rng = SplitMix64::new(3);
        let fixed = vec_of(any_bool(), 17);
        assert_eq!(fixed.generate(&mut rng).len(), 17);
        let ranged = vec_of(0u8..5, 2..6);
        for _ in 0..500 {
            let v = ranged.generate(&mut rng);
            assert!((2..6).contains(&v.len()), "len {}", v.len());
        }
    }

    #[test]
    fn vec_shrink_removes_and_shrinks_elements() {
        let g = vec_of(0u64..10, 0..8);
        let cands = g.shrink(&vec![3, 7]);
        assert!(cands.contains(&vec![3]), "drops the tail");
        assert!(cands.contains(&vec![7]), "drops interior elements");
        assert!(cands.iter().any(|c| c == &vec![0, 7] || c == &vec![3, 0]));
        let fixed = vec_of(0u64..10, 2);
        assert!(fixed.shrink(&vec![3, 7]).iter().all(|c| c.len() == 2));
    }

    #[test]
    fn tuple_shrink_varies_one_component() {
        let g = (0u64..10, 0usize..10);
        for cand in g.shrink(&(4, 5)) {
            let changed = (cand.0 != 4) as u32 + (cand.1 != 5) as u32;
            assert_eq!(changed, 1, "{cand:?} changed both components");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = (0u64..1000, vec_of(any_bool(), 0..20));
        let a = g.generate(&mut SplitMix64::new(42));
        let b = g.generate(&mut SplitMix64::new(42));
        assert_eq!(a, b);
    }
}
