//! `qcheck` — in-repo property-based testing with zero registry
//! dependencies.
//!
//! The workspace's hermetic-build policy (see DESIGN.md) forbids crates.io
//! dependencies, so this crate replaces `proptest` for every property test
//! in the repository. It provides:
//!
//! - deterministic [generators](generate) driven by the workspace's own
//!   [`SplitMix64`](netlist::rng::SplitMix64) stream — ranges, booleans,
//!   vectors and tuples compose exactly like proptest strategies;
//! - greedy [shrinking](generate::Gen::shrink) of failing cases toward a
//!   minimal counterexample (integers halve toward their range minimum,
//!   vectors drop elements, tuples shrink one component at a time);
//! - a [`props!`] macro front-end mirroring the `proptest!` call-site shape,
//!   plus an expression-position [`qcheck!`] for one-off properties;
//! - persisted regression seeds: failures report a replayable `u64` case
//!   seed, and seeds recorded in a checked-in [`.qcheck-regressions`
//!   file](regressions) re-run before any fresh cases.
//!
//! # Example
//!
//! Test modules declare properties with [`props!`]; expression position
//! (as in this doctest) uses [`qcheck!`]:
//!
//! ```
//! qcheck::qcheck!("addition_in_range", qcheck::Config::with_cases(64),
//!     a in 0u64..100, b in 0u64..100 => {
//!         qcheck::prop_assert!(a + b < 200, "a={a} b={b}");
//!     });
//! ```

pub mod generate;
pub mod regressions;
pub mod runner;

pub use generate::{any_bool, any_u64, any_u8, vec_of, AnyBool, Gen, VecGen};
pub use runner::{check, check_result, Config, Failure};

/// Namespace mirroring `proptest::collection` so ported call sites keep
/// their shape (`collection::vec(any_bool(), 5..40)`).
pub mod collection {
    pub use crate::generate::vec_of as vec;
}

/// Declares `#[test]` property functions, mirroring the `proptest!` macro.
///
/// ```ignore
/// qcheck::props! {
///     config = qcheck::Config::with_cases(24);
///
///     fn my_property((a, b) in (0u64..10, 0usize..10), flag in qcheck::any_bool()) {
///         qcheck::prop_assert!(a < 10);
///     }
/// }
/// ```
///
/// Each function body runs once per generated case and may use
/// [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assert_ne!`]; any panic
/// inside the body also fails the case (but skips shrinking, so prefer the
/// `prop_*` macros).
#[macro_export]
macro_rules! props {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat_param in $gen:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __config: $crate::Config = $config;
                let __gen = ($($gen,)+);
                $crate::check(stringify!($name), &__gen, &__config, |__value| {
                    let ($($pat,)+) = __value;
                    $body
                    Ok(())
                });
            }
        )+
    };
}

/// Expression-position property check for one-off use inside an ordinary
/// `#[test]`; panics with a shrink report on failure.
///
/// ```
/// qcheck::qcheck!("doubling_is_even", qcheck::Config::with_cases(32),
///     x in 0u64..1000 => {
///         qcheck::prop_assert_eq!((2 * x) % 2, 0);
///     });
/// ```
#[macro_export]
macro_rules! qcheck {
    ( $name:expr, $config:expr, $($pat:pat_param in $gen:expr),+ $(,)? => $body:block ) => {{
        let __config: $crate::Config = $config;
        let __gen = ($($gen,)+);
        $crate::check($name, &__gen, &__config, |__value| {
            let ($($pat,)+) = __value;
            $body
            Ok(())
        });
    }};
}

/// Fails the current property case (with an optional formatted message)
/// unless the condition holds. Only valid inside [`props!`] / [`qcheck!`]
/// bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err(format!("prop_assert!({})", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!(
                "prop_assert!({}): {}",
                stringify!($cond),
                format!($($fmt)+)
            ));
        }
    };
}

/// Fails the current property case unless both expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return Err(format!(
                "prop_assert_eq!({}, {})\n    left: {:?}\n   right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            ));
        }
    }};
}

/// Fails the current property case if both expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return Err(format!(
                "prop_assert_ne!({}, {})\n    both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            ));
        }
    }};
}
