//! The property runner: case scheduling, failure reporting and shrinking.

use std::fmt;

use netlist::rng::SplitMix64;

use crate::generate::Gen;
use crate::regressions;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of fresh random cases to run (persisted regression seeds run
    /// in addition, before these).
    pub cases: u32,
    /// Upper bound on accepted shrink steps while minimizing a failure.
    pub max_shrink_steps: u32,
    /// Base seed for the fresh-case schedule. `None` derives a stable seed
    /// from the property name, so every property explores its own stream
    /// but reruns are bit-identical.
    pub seed: Option<u64>,
    /// Whether to consult the `.qcheck-regressions` file.
    pub use_regressions: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_shrink_steps: 4096,
            seed: None,
            use_regressions: true,
        }
    }
}

impl Config {
    /// A default configuration running `cases` fresh cases (the
    /// `ProptestConfig::with_cases` of this harness).
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// FNV-1a, used to give each property a distinct default seed stream.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// SplitMix64 finalizer, used to decorrelate `base ^ index` case seeds.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A minimized property failure.
#[derive(Debug, Clone)]
pub struct Failure<V> {
    /// Property name as passed to [`check`].
    pub property: String,
    /// Case seed that reproduces the failure (regenerate with the same
    /// generator to replay).
    pub seed: u64,
    /// Whether the failing seed came from the regression file.
    pub from_regressions: bool,
    /// The originally generated failing value.
    pub original: V,
    /// The minimal failing value found by shrinking.
    pub minimal: V,
    /// Number of accepted shrink steps between `original` and `minimal`.
    pub shrink_steps: u32,
    /// Assertion message from the minimal failing run.
    pub message: String,
}

impl<V: fmt::Debug> fmt::Display for Failure<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "property `{}` failed", self.property)?;
        writeln!(f, "  seed:      0x{:016x}{}", self.seed, if self.from_regressions { "  (from .qcheck-regressions)" } else { "" })?;
        writeln!(f, "  original:  {:?}", self.original)?;
        writeln!(
            f,
            "  minimal:   {:?}  ({} shrink steps)",
            self.minimal, self.shrink_steps
        )?;
        writeln!(f, "  assertion: {}", self.message)?;
        write!(
            f,
            "to persist this case, append to .qcheck-regressions:\n  {} 0x{:016x}",
            self.property, self.seed
        )
    }
}

/// Runs `prop` against `cases` generated values (plus any persisted
/// regression seeds, which run first), returning the shrunk failure instead
/// of panicking. This is the engine behind [`check`]; tests of the harness
/// itself use it to inspect minimization results.
pub fn check_result<G, F>(
    name: &str,
    gen: &G,
    config: &Config,
    mut prop: F,
) -> Result<u32, Box<Failure<G::Value>>>
where
    G: Gen,
    F: FnMut(G::Value) -> Result<(), String>,
{
    let base = config.seed.unwrap_or_else(|| hash_name(name));
    let regression_seeds = if config.use_regressions {
        regressions::load(name)
    } else {
        Vec::new()
    };
    let mut ran = 0u32;
    let schedule = regression_seeds
        .iter()
        .map(|&s| (s, true))
        .chain((0..config.cases).map(|i| (mix(base ^ mix(i as u64)), false)));
    for (case_seed, from_regressions) in schedule {
        let value = gen.generate(&mut SplitMix64::new(case_seed));
        ran += 1;
        if let Err(message) = prop(value.clone()) {
            let (minimal, message, shrink_steps) =
                minimize(gen, value.clone(), message, config.max_shrink_steps, &mut prop);
            return Err(Box::new(Failure {
                property: name.to_string(),
                seed: case_seed,
                from_regressions,
                original: value,
                minimal,
                shrink_steps,
                message,
            }));
        }
    }
    Ok(ran)
}

/// Greedy shrink: repeatedly move to the first failing shrink candidate
/// until no candidate fails or the step budget runs out.
fn minimize<G, F>(
    gen: &G,
    mut current: G::Value,
    mut message: String,
    max_steps: u32,
    prop: &mut F,
) -> (G::Value, String, u32)
where
    G: Gen,
    F: FnMut(G::Value) -> Result<(), String>,
{
    let mut steps = 0;
    'outer: while steps < max_steps {
        for candidate in gen.shrink(&current) {
            if let Err(m) = prop(candidate.clone()) {
                current = candidate;
                message = m;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (current, message, steps)
}

/// Runs a property and panics with a full shrink report on failure. This is
/// what the [`props!`](crate::props) / [`qcheck!`](crate::qcheck) macros
/// expand to.
pub fn check<G, F>(name: &str, gen: &G, config: &Config, prop: F)
where
    G: Gen,
    F: FnMut(G::Value) -> Result<(), String>,
{
    if let Err(failure) = check_result(name, gen, config, prop) {
        panic!("{failure}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{any_bool, vec_of};
    use std::cell::Cell;

    fn no_regressions(cases: u32) -> Config {
        Config {
            cases,
            use_regressions: false,
            ..Config::default()
        }
    }

    #[test]
    fn passing_property_runs_exactly_the_configured_cases() {
        let ran = Cell::new(0u32);
        let n = check_result("always_true", &(0u64..100), &no_regressions(24), |_| {
            ran.set(ran.get() + 1);
            Ok(())
        })
        .expect("property holds");
        assert_eq!(n, 24);
        assert_eq!(ran.get(), 24);
    }

    #[test]
    fn integer_failure_shrinks_to_the_boundary() {
        // Fails iff x >= 37: the minimal counterexample is exactly 37.
        let failure = check_result("ge_37", &(0u64..10_000), &no_regressions(256), |x| {
            if x >= 37 {
                Err(format!("{x} >= 37"))
            } else {
                Ok(())
            }
        })
        .expect_err("must find a counterexample in 256 cases");
        assert_eq!(failure.minimal, 37, "report: {failure}");
        assert!(failure.original >= 37);
    }

    #[test]
    fn tuple_failure_shrinks_each_component() {
        // Fails iff a >= 3 && b >= 5: minimal counterexample is (3, 5).
        let gen = (0u64..1000, 0u64..1000);
        let failure = check_result("conj", &gen, &no_regressions(512), |(a, b)| {
            if a >= 3 && b >= 5 {
                Err("both large".to_string())
            } else {
                Ok(())
            }
        })
        .expect_err("counterexample exists");
        assert_eq!(failure.minimal, (3, 5), "report: {failure}");
    }

    #[test]
    fn vec_failure_shrinks_length_and_elements() {
        // Fails iff the vector has >= 3 set bits: minimal is [true; 3].
        let gen = vec_of(any_bool(), 0..12);
        let failure = check_result("three_set", &gen, &no_regressions(512), |v| {
            if v.iter().filter(|&&b| b).count() >= 3 {
                Err("too many set".to_string())
            } else {
                Ok(())
            }
        })
        .expect_err("counterexample exists");
        assert_eq!(failure.minimal, vec![true, true, true], "report: {failure}");
    }

    #[test]
    fn failing_seed_replays_to_the_same_value() {
        let gen = (0u64..100_000, 0usize..50);
        let failure = check_result("replay", &gen, &no_regressions(64), |(x, _)| {
            if x > 1000 {
                Err("big".into())
            } else {
                Ok(())
            }
        })
        .expect_err("counterexample exists");
        let replayed = crate::Gen::generate(&gen, &mut SplitMix64::new(failure.seed));
        assert_eq!(replayed, failure.original);
    }

    #[test]
    fn explicit_seed_overrides_name_hash() {
        let run = |name: &str| {
            let cfg = Config {
                cases: 8,
                seed: Some(99),
                use_regressions: false,
                ..Config::default()
            };
            let mut values = Vec::new();
            check_result(name, &(0u64..1_000_000), &cfg, |v| {
                values.push(v);
                Ok(())
            })
            .unwrap();
            values
        };
        assert_eq!(run("name_one"), run("name_two"));
    }

    #[test]
    fn display_report_mentions_regression_line() {
        let failure = check_result("doc_report", &(0u64..10), &no_regressions(16), |x| {
            if x >= 1 {
                Err("x >= 1".into())
            } else {
                Ok(())
            }
        })
        .expect_err("counterexample exists");
        let report = failure.to_string();
        assert!(report.contains("doc_report 0x"), "{report}");
        assert!(report.contains("minimal:   1"), "{report}");
    }
}
