//! Persisted regression seeds.
//!
//! When a property fails, the runner reports the `u64` case seed that
//! reproduces the failure. Appending a line
//!
//! ```text
//! property_name 0x1a2b3c4d5e6f7788
//! ```
//!
//! to a checked-in `.qcheck-regressions` file makes that exact case re-run
//! *before* any fresh cases on every subsequent `cargo test`, so past
//! failures stay covered forever (the moral equivalent of proptest's
//! `.proptest-regressions` files, but keyed by replayable RNG seed instead
//! of an opaque strategy hash).
//!
//! The file is looked up per test binary: the `QCHECK_REGRESSIONS`
//! environment variable wins if set; otherwise the runner walks up from the
//! current directory (cargo runs test binaries from the owning package root)
//! until it finds a `.qcheck-regressions`, giving up after a few levels.

use std::path::{Path, PathBuf};

/// Default file name searched for along the package's ancestor directories.
pub const FILE_NAME: &str = ".qcheck-regressions";

/// How many ancestor directories [`locate`] climbs before giving up. Deep
/// enough for any crate nested under the workspace root.
const MAX_ASCENT: usize = 5;

/// One persisted regression entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Property name the seed belongs to (first whitespace-separated field).
    pub property: String,
    /// Case seed replayed through the property's generator.
    pub seed: u64,
}

/// Parses the regression-file format: one `property seed` pair per line,
/// seeds in decimal or `0x` hex, `#` starts a comment. Malformed lines are
/// skipped (an old or hand-edited file must never break the suite).
pub fn parse(text: &str) -> Vec<Entry> {
    let mut entries = Vec::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        let (Some(property), Some(seed)) = (fields.next(), fields.next()) else {
            continue;
        };
        let parsed = match seed.strip_prefix("0x").or_else(|| seed.strip_prefix("0X")) {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => seed.parse(),
        };
        if let Ok(seed) = parsed {
            entries.push(Entry {
                property: property.to_string(),
                seed,
            });
        }
    }
    entries
}

/// Finds the regression file for the current test binary, if any.
pub fn locate() -> Option<PathBuf> {
    if let Ok(path) = std::env::var("QCHECK_REGRESSIONS") {
        let path = PathBuf::from(path);
        return path.is_file().then_some(path);
    }
    let mut dir = std::env::current_dir().ok()?;
    for _ in 0..=MAX_ASCENT {
        let candidate = dir.join(FILE_NAME);
        if candidate.is_file() {
            return Some(candidate);
        }
        if !dir.pop() {
            break;
        }
    }
    None
}

/// Loads the seeds persisted for `property` from `path`.
pub fn seeds_for(path: &Path, property: &str) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    parse(&text)
        .into_iter()
        .filter(|e| e.property == property)
        .map(|e| e.seed)
        .collect()
}

/// Loads the seeds for `property` from the located regression file (empty
/// when no file exists).
pub fn load(property: &str) -> Vec<u64> {
    match locate() {
        Some(path) => seeds_for(&path, property),
        None => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_decimal_hex_and_comments() {
        let text = "\
# header comment
prop_a 0x10
prop_a 42 # trailing comment
prop_b 7

malformed-line-without-seed
prop_c not_a_number
";
        let entries = parse(text);
        assert_eq!(
            entries,
            vec![
                Entry {
                    property: "prop_a".into(),
                    seed: 16
                },
                Entry {
                    property: "prop_a".into(),
                    seed: 42
                },
                Entry {
                    property: "prop_b".into(),
                    seed: 7
                },
            ]
        );
    }

    #[test]
    fn seeds_for_filters_by_property() {
        let dir = std::env::temp_dir().join("qcheck_regressions_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(FILE_NAME);
        std::fs::write(&path, "a 1\nb 2\na 0x3\n").unwrap();
        assert_eq!(seeds_for(&path, "a"), vec![1, 3]);
        assert_eq!(seeds_for(&path, "b"), vec![2]);
        assert!(seeds_for(&path, "c").is_empty());
    }

    #[test]
    fn missing_file_is_empty_not_fatal() {
        assert!(seeds_for(Path::new("/nonexistent/qcheck"), "a").is_empty());
    }
}
