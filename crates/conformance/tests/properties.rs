//! Property-level conformance: the 4-way differential pipeline on
//! generated circuits, with qcheck shrinking and pinned regression seeds.
//!
//! Failing seeds land in the workspace-root `.qcheck-regressions` file (the
//! panic report prints the exact line to append); the two properties here
//! each have one pinned entry so the replay path stays exercised.

use conformance::seqgen::{ScanSessionGen, SeqCircuitGen};
use conformance::{differential, enccheck};
use gatesim::SeqSim;
use locking::random::RllConfig;
use qcheck::{props, Config};

props! {
    config = Config::with_cases(12);

    /// The 4-way differential check on random combinational circuits:
    /// naive interpreter vs 64-lane full sweep vs incremental kernel
    /// (legs 1–3, every net, every step), then the SAT miter against
    /// sampled simulation on an RLL lock of the same circuit (leg 4),
    /// for both the correct key and a corrupted one.
    fn conformance_four_way_engines_agree(
        (seed, inputs, outputs, gates) in (0u64..1_000_000, 4usize..10, 2usize..6, 16usize..90),
    ) {
        let c = netlist::generate::random_comb(seed, inputs, outputs, gates)
            .expect("profile within generator bounds");
        let r = differential::differential_check(&c, None, seed ^ 0xD1FF, 2 * inputs.max(8));
        qcheck::prop_assert!(matches!(r, Ok(true)), "engine differential: {r:?}");

        let locked = locking::random::lock(&c, &RllConfig { key_bits: 4, seed })
            .expect("lockable");
        let mut r = enccheck::miter_cross_check(&locked, &locked.correct_key);
        qcheck::prop_assert!(r.is_ok(), "SAT leg, correct key: {r:?}");
        let mut wrong = locked.correct_key.clone();
        wrong[0] = !wrong[0];
        r = enccheck::miter_cross_check(&locked, &wrong);
        qcheck::prop_assert!(r.is_ok(), "SAT leg, corrupted key: {r:?}");
    }

    /// Sequential circuits from the DFF generator: the combinational part
    /// passes the differential battery, and [`gatesim::SeqSim`] stepping
    /// matches the naive interpreter's view of the next-state function.
    fn conformance_sequential_circuits_agree(spec in SeqCircuitGen) {
        let c = spec.build();
        let r = differential::differential_check(&c, None, spec.seed ^ 0x5E0D, 12);
        qcheck::prop_assert!(matches!(r, Ok(true)), "engine differential: {r:?}");

        let mut sim = SeqSim::new(&c).expect("acyclic");
        let n_pis = c.primary_inputs().len();
        let n_pos = c.primary_outputs().len();
        let mut rng = netlist::rng::SplitMix64::new(spec.seed ^ 0x57EB);
        let mut state: Vec<bool> = (0..c.dffs().len()).map(|_| rng.bool()).collect();
        sim.set_state(&state);
        for _step in 0..8 {
            let pis: Vec<bool> = (0..n_pis).map(|_| rng.bool()).collect();
            // Reference: comb inputs are [PIs, FF outputs]; comb outputs
            // are [POs, FF next-state inputs].
            let mut comb_in = pis.clone();
            comb_in.extend_from_slice(&state);
            let comb_out = conformance::reference::eval_bits(&c, &comb_in);
            let got = sim.step(&pis);
            qcheck::prop_assert_eq!(&got[..], &comb_out[..n_pos]);
            state = comb_out[n_pos..].to_vec();
            qcheck::prop_assert_eq!(sim.state(), &state[..]);
        }
    }
}

props! {
    config = Config::with_cases(8);

    /// Scan-obfuscation session unrolling on random DFF circuits: the
    /// unrolled combinational session (the circuit DynUnlock encodes to
    /// CNF), evaluated by the naive interpreter, must match the chip
    /// model's [`SeqSim`]-based stepping for random seeds and scan
    /// stimuli — and a genuine chip response must be admitted by the
    /// AIG-reduced CNF under the correct seed, while a corrupted response
    /// must be rejected.
    fn conformance_scan_session_unroll_agrees(spec in ScanSessionGen) {
        use attacks::aigcnf::ReducedEncoder;
        use cdcl::{SolveResult, Solver};
        use locking::scan_obfuscation::{ObfScanSim, UnrollOptions};

        let (orig, locked) = spec.lock();
        let unrolled = locked.unroll(&UnrollOptions::default()).expect("acyclic");
        let n_stream = unrolled.load_cycles * unrolled.num_chains;
        let n_pis = orig.primary_inputs().len();
        let mut rng = netlist::rng::SplitMix64::new(spec.obf_seed ^ 0x5E55);

        for trial in 0..4 {
            let key: Vec<bool> = if trial == 0 {
                locked.correct_key.clone()
            } else {
                (0..spec.key_bits).map(|_| rng.bool()).collect()
            };
            let stream: Vec<bool> = (0..n_stream).map(|_| rng.bool()).collect();
            let pis: Vec<bool> = (0..n_pis).map(|_| rng.bool()).collect();
            let mut chip = ObfScanSim::new(&locked, &key).expect("acyclic");
            let want = chip.session(unrolled.load_cycles, unrolled.unload_cycles, &stream, &pis);
            let mut x = key.clone();
            x.extend(&stream);
            x.extend(&pis);
            let got = conformance::reference::eval_bits(&unrolled.locked.circuit, &x);
            qcheck::prop_assert_eq!(&got[..], &want[..]);

            if trial == 0 {
                // CNF leg: the correct-seed response is admissible, and no
                // single-bit corruption of it is.
                let stim: Vec<bool> = stream.iter().chain(&pis).copied().collect();
                let mut solver = Solver::new();
                let mut enc = ReducedEncoder::new(&unrolled.locked, &mut solver, 1);
                let ok = enc.add_io_constraint(&mut solver, 0, &stim, &want);
                let assumptions: Vec<cdcl::Lit> = enc
                    .key_vars(0)
                    .iter()
                    .zip(&locked.correct_key)
                    .map(|(&v, &b)| v.lit(b))
                    .collect();
                qcheck::prop_assert!(
                    ok && solver.solve_with(&assumptions) == SolveResult::Sat,
                    "correct chip session rejected by the unrolled CNF"
                );

                let mut bad = want.clone();
                let flip = rng.below_usize(bad.len());
                bad[flip] = !bad[flip];
                let mut solver = Solver::new();
                let mut enc = ReducedEncoder::new(&unrolled.locked, &mut solver, 1);
                let ok = enc.add_io_constraint(&mut solver, 0, &stim, &bad);
                let assumptions: Vec<cdcl::Lit> = enc
                    .key_vars(0)
                    .iter()
                    .zip(&locked.correct_key)
                    .map(|(&v, &b)| v.lit(b))
                    .collect();
                qcheck::prop_assert!(
                    !ok || solver.solve_with(&assumptions) != SolveResult::Sat,
                    "corrupted session (bit {}) admitted under the correct seed",
                    flip
                );
            }
        }
    }

    /// K-Gate multi-key round-trips on random combinational circuits: under
    /// the recorded key, the locked circuit matches the original on random
    /// data vectors spanning every input class, and the class observed per
    /// vector stays within the configured class count.
    fn conformance_kgate_multikey_roundtrip(
        (seed, sel_pow, word_bits, outputs, gates) in
            (0u64..1_000_000, 1usize..4, 1usize..5, 2usize..6, 30usize..90),
    ) {
        use locking::kgate::{self, KGateConfig};

        let inputs = 9;
        let orig = netlist::generate::random_comb(seed, inputs, outputs, gates)
            .expect("profile within generator bounds");
        let config = KGateConfig { classes: 1 << sel_pow, word_bits, seed };
        let locked = kgate::lock(&orig, &config).expect("lockable");
        qcheck::prop_assert_eq!(locked.key_bits(), (1 << sel_pow) * word_bits);

        // Per-vector round-trip under the recorded multi-key, with the key
        // bits routed by net id (not position) so the check is robust to
        // input-ordering choices in the locker.
        let comb_inputs = locked.circuit.comb_inputs().to_vec();
        let key_pos: std::collections::HashMap<netlist::NetId, usize> = locked
            .key_inputs
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i))
            .collect();
        let mut rng = netlist::rng::SplitMix64::new(seed ^ 0x4b67);
        let mut seen_classes = vec![false; config.classes];
        for _ in 0..128 {
            let data: Vec<bool> = (0..inputs).map(|_| rng.bool()).collect();
            let class = kgate::input_class(&orig, &config, &data);
            qcheck::prop_assert!(class < config.classes);
            seen_classes[class] = true;

            let mut data_iter = data.iter().copied();
            let x: Vec<bool> = comb_inputs
                .iter()
                .map(|n| match key_pos.get(n) {
                    Some(&i) => locked.correct_key[i],
                    None => data_iter.next().expect("data covers original inputs"),
                })
                .collect();
            let got = conformance::reference::eval_bits(&locked.circuit, &x);
            let want = conformance::reference::eval_bits(&orig, &data);
            qcheck::prop_assert_eq!(&got[..], &want[..]);
        }
        qcheck::prop_assert!(
            seen_classes.iter().all(|&s| s),
            "128 random vectors must span all {} classes",
            config.classes
        );
    }
}

props! {
    config = Config::with_cases(2);

    /// Profile fidelity at the 10⁵-gate tier: `scaled_to_gates` through the
    /// streaming synthesis path must hit the requested non-inverter gate
    /// count *exactly*, scale the PI/PO/FF interface proportionally, and
    /// produce a well-formed artifact (positive depth, dense levels, a full
    /// sweep that completes over every net).
    fn conformance_large_scale_profile_fidelity(
        seed in 0u64..(1 << 32),
        gates in 100_000usize..130_000,
        pick in 0usize..4,
    ) {
        use netlist::generate::{profile, synthesize_compiled, BenchmarkId};
        let base = [
            BenchmarkId::S38417,
            BenchmarkId::B17,
            BenchmarkId::B18,
            BenchmarkId::B20,
        ][pick];
        let mut p = profile(base).scaled_to_gates(gates);
        p.seed ^= seed;
        qcheck::prop_assert_eq!(p.gates, gates);
        let cc = synthesize_compiled(&p).expect("synthesizable at 1e5 gates");

        // Interface fidelity: the combinational views are PIs+FFs in and
        // POs+FFs out, exactly as the profile prescribes.
        qcheck::prop_assert_eq!(cc.inputs().len(), p.primary_inputs + p.dffs);
        qcheck::prop_assert_eq!(cc.outputs().len(), p.primary_outputs + p.dffs);

        // Gate-count fidelity: non-inverter gates hit the request exactly.
        let hard_gates = (0..cc.num_nets() as u32)
            .filter(|&n| {
                cc.kind_of(n)
                    .is_some_and(|k| !k.is_inverter_like())
            })
            .count();
        qcheck::prop_assert_eq!(hard_gates, p.gates);

        // Structural sanity at scale: every net's level is consistent with
        // its fanins and the artifact sweeps cleanly.
        qcheck::prop_assert!(cc.depth() >= 4, "depth {} degenerate", cc.depth());
        for n in 0..cc.num_nets() as u32 {
            if cc.kind_of(n).is_some() {
                let want = 1 + cc
                    .fanin(n)
                    .iter()
                    .map(|&f| cc.level_of(f))
                    .max()
                    .expect("gates have fanin");
                qcheck::prop_assert_eq!(cc.level_of(n), want);
            }
        }
        let words: Vec<u64> = (0..cc.inputs().len() as u64).map(|i| i.wrapping_mul(0x9E37)).collect();
        let mut values = Vec::new();
        cc.eval_full_into(&words, &mut values);
        qcheck::prop_assert_eq!(values.len(), cc.num_nets());
    }
}
