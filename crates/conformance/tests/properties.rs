//! Property-level conformance: the 4-way differential pipeline on
//! generated circuits, with qcheck shrinking and pinned regression seeds.
//!
//! Failing seeds land in the workspace-root `.qcheck-regressions` file (the
//! panic report prints the exact line to append); the two properties here
//! each have one pinned entry so the replay path stays exercised.

use conformance::seqgen::SeqCircuitGen;
use conformance::{differential, enccheck};
use gatesim::SeqSim;
use locking::random::RllConfig;
use qcheck::{props, Config};

props! {
    config = Config::with_cases(12);

    /// The 4-way differential check on random combinational circuits:
    /// naive interpreter vs 64-lane full sweep vs incremental kernel
    /// (legs 1–3, every net, every step), then the SAT miter against
    /// sampled simulation on an RLL lock of the same circuit (leg 4),
    /// for both the correct key and a corrupted one.
    fn conformance_four_way_engines_agree(
        (seed, inputs, outputs, gates) in (0u64..1_000_000, 4usize..10, 2usize..6, 16usize..90),
    ) {
        let c = netlist::generate::random_comb(seed, inputs, outputs, gates)
            .expect("profile within generator bounds");
        let r = differential::differential_check(&c, None, seed ^ 0xD1FF, 2 * inputs.max(8));
        qcheck::prop_assert!(matches!(r, Ok(true)), "engine differential: {r:?}");

        let locked = locking::random::lock(&c, &RllConfig { key_bits: 4, seed })
            .expect("lockable");
        let mut r = enccheck::miter_cross_check(&locked, &locked.correct_key);
        qcheck::prop_assert!(r.is_ok(), "SAT leg, correct key: {r:?}");
        let mut wrong = locked.correct_key.clone();
        wrong[0] = !wrong[0];
        r = enccheck::miter_cross_check(&locked, &wrong);
        qcheck::prop_assert!(r.is_ok(), "SAT leg, corrupted key: {r:?}");
    }

    /// Sequential circuits from the DFF generator: the combinational part
    /// passes the differential battery, and [`gatesim::SeqSim`] stepping
    /// matches the naive interpreter's view of the next-state function.
    fn conformance_sequential_circuits_agree(spec in SeqCircuitGen) {
        let c = spec.build();
        let r = differential::differential_check(&c, None, spec.seed ^ 0x5E0D, 12);
        qcheck::prop_assert!(matches!(r, Ok(true)), "engine differential: {r:?}");

        let mut sim = SeqSim::new(&c).expect("acyclic");
        let n_pis = c.primary_inputs().len();
        let n_pos = c.primary_outputs().len();
        let mut rng = netlist::rng::SplitMix64::new(spec.seed ^ 0x57EB);
        let mut state: Vec<bool> = (0..c.dffs().len()).map(|_| rng.bool()).collect();
        sim.set_state(&state);
        for _step in 0..8 {
            let pis: Vec<bool> = (0..n_pis).map(|_| rng.bool()).collect();
            // Reference: comb inputs are [PIs, FF outputs]; comb outputs
            // are [POs, FF next-state inputs].
            let mut comb_in = pis.clone();
            comb_in.extend_from_slice(&state);
            let comb_out = conformance::reference::eval_bits(&c, &comb_in);
            let got = sim.step(&pis);
            qcheck::prop_assert_eq!(&got[..], &comb_out[..n_pos]);
            state = comb_out[n_pos..].to_vec();
            qcheck::prop_assert_eq!(sim.state(), &state[..]);
        }
    }
}
