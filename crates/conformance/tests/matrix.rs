//! The mutation-kill matrix and the scheme × attack loop battery as
//! `cargo test` gates: every checked-in mutant must die, the clean
//! baseline must pass, and every attack loop must satisfy the exact-verify
//! conformance rules.

use conformance::attack_loop;
use conformance::mutation::{self, Scale};

#[test]
fn mutation_matrix_kills_every_mutant_at_smoke_scale() {
    let report = mutation::run_matrix(Scale::Smoke);
    assert!(
        report.baseline_ok,
        "clean engines failed the battery: {}",
        report.baseline_detail
    );
    assert!(
        report.results.len() >= 24,
        "catalog shrank below the 24-mutant floor: {}",
        report.results.len()
    );
    let survivors = report.survivors();
    assert!(
        survivors.is_empty(),
        "mutants survived the battery: {survivors:?}"
    );
    // Every mutated layer must be represented in the kill set.
    for layer in ["netlist", "sim", "atpg", "sat", "attacks", "locking"] {
        assert!(
            report.results.iter().any(|r| r.layer == layer && r.killed),
            "no killed mutant in layer {layer}"
        );
    }
}

#[test]
fn attack_loops_satisfy_exact_verification_rules() {
    let rows = attack_loop::attack_loop_battery().expect("loop battery conforms");
    assert_eq!(
        rows.len(),
        attack_loop::SCHEMES.len() * attack_loop::ATTACKS.len()
    );
    // The exact attacks must have proven exactness on every scheme.
    for row in &rows {
        if matches!(
            row.attack,
            attack_loop::AttackKind::Sat | attack_loop::AttackKind::DoubleDip
        ) {
            assert_eq!(
                row.exact,
                Some(true),
                "{:?} × {:?} should be exactly correct",
                row.scheme,
                row.attack
            );
        }
    }
}
