//! The CDCL solver battery: brute force as the ground truth.
//!
//! Three checks, all deterministic:
//!
//! 1. **unit truthfulness** — unit clauses must surface verbatim through
//!    [`cdcl::Solver::value`] (variable 0 included, which is exactly where
//!    the `MisreportValue` mutant lies).
//! 2. **binary-only UNSAT** — the four binary clauses
//!    `(a∨b)(¬a∨b)(a∨¬b)(¬a∨¬b)` are unsatisfiable purely through the
//!    dedicated binary watch lists; a solver that stops visiting them
//!    happily reports SAT.
//! 3. **random CNFs vs exhaustive enumeration** — small mixed 2/3/4-CNF
//!    instances near the satisfiability threshold, solved both by the CDCL
//!    solver and by brute force; verdicts must match and every SAT model
//!    must actually satisfy the formula.
//!
//! The battery takes the sabotage selector so the mutation harness can run
//! the identical checks against a sabotaged solver.

use cdcl::{SolveResult, Solver, SolverSabotage};
use netlist::rng::SplitMix64;

/// One clause as (variable index, polarity) pairs; `true` = positive.
type Clause = Vec<(usize, bool)>;

fn fresh_solver(sabotage: Option<SolverSabotage>) -> Solver {
    let mut s = Solver::new();
    s.set_sabotage(sabotage);
    s
}

/// Deterministic random CNF: `m` clauses of exactly 3 distinct literals
/// over `n` variables.
fn gen_cnf(rng: &mut SplitMix64, n: usize, m: usize) -> Vec<Clause> {
    gen_cnf_width(rng, n, m, |_| 3)
}

/// Deterministic mixed-width CNF: `m` clauses of 2–4 distinct literals
/// over `n` variables.
fn gen_cnf_mixed(rng: &mut SplitMix64, n: usize, m: usize) -> Vec<Clause> {
    gen_cnf_width(rng, n, m, |rng| 2 + rng.below_usize(3))
}

fn gen_cnf_width(
    rng: &mut SplitMix64,
    n: usize,
    m: usize,
    mut width: impl FnMut(&mut SplitMix64) -> usize,
) -> Vec<Clause> {
    let mut clauses = Vec::with_capacity(m);
    for _ in 0..m {
        let w = width(rng);
        let mut vars: Vec<usize> = Vec::with_capacity(w);
        while vars.len() < w.min(n) {
            let v = rng.below_usize(n);
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        clauses.push(vars.into_iter().map(|v| (v, rng.bool())).collect());
    }
    clauses
}

/// Exhaustive satisfiability check for `n <= 20` variables. Returns a
/// witness assignment (bit `i` = variable `i`) or `None`.
fn brute_force(n: usize, clauses: &[Clause]) -> Option<u64> {
    assert!(n <= 20, "brute force is exponential; keep instances small");
    'outer: for assignment in 0u64..(1 << n) {
        for clause in clauses {
            if !clause
                .iter()
                .any(|&(v, pos)| ((assignment >> v) & 1 == 1) == pos)
            {
                continue 'outer;
            }
        }
        return Some(assignment);
    }
    None
}

fn model_satisfies(solver: &Solver, vars: &[cdcl::Var], clauses: &[Clause]) -> bool {
    clauses.iter().all(|clause| {
        clause
            .iter()
            .any(|&(v, pos)| solver.value(vars[v]).unwrap_or(false) == pos)
    })
}

/// Runs the full solver battery. `instances` scales the random-CNF bank.
///
/// `Ok(())` means every check passed; `Err` carries the first
/// inconsistency (in mutation mode, the kill message).
pub fn solver_battery(
    sabotage: Option<SolverSabotage>,
    instances: usize,
) -> Result<(), String> {
    // 1. Unit truthfulness.
    let mut s = fresh_solver(sabotage);
    let a = s.new_var();
    let b = s.new_var();
    s.add_clause(&[a.positive()]);
    s.add_clause(&[b.negative()]);
    if s.solve() != SolveResult::Sat {
        return Err("unit check: two unit clauses reported unsatisfiable".into());
    }
    if s.value(a) != Some(true) || s.value(b) != Some(false) {
        return Err(format!(
            "unit check: value() misreports units: a={:?} b={:?}",
            s.value(a),
            s.value(b)
        ));
    }

    // 2. Binary-only UNSAT.
    let mut s = fresh_solver(sabotage);
    let a = s.new_var();
    let b = s.new_var();
    s.add_clause(&[a.positive(), b.positive()]);
    s.add_clause(&[a.negative(), b.positive()]);
    s.add_clause(&[a.positive(), b.negative()]);
    let still_ok = s.add_clause(&[a.negative(), b.negative()]);
    if still_ok && s.solve() != SolveResult::Unsat {
        return Err("binary check: the complete 2-CNF over {a,b} must be UNSAT".into());
    }

    // 3. Random CNFs vs brute force. Two sub-banks share the check loop:
    //    a mixed-width one (2–4 literals, keeps binary and ternary paths
    //    hot) and a pure 3-CNF one at the satisfiability threshold
    //    (n = 14, m = 60) — near-threshold 3-SAT instances have few models
    //    and force long conflict analyses, which is where an unsound
    //    learnt-clause strengthening flips SAT verdicts to UNSAT.
    let mut mixed_rng = SplitMix64::new(0xCDC1_C0DE);
    let mut hard_rng = SplitMix64::new(0x3C4F_5A7D);
    let mut sat_seen = 0usize;
    let mut unsat_seen = 0usize;
    for inst in 0..2 * instances {
        let hard = inst >= instances;
        let (n, clauses) = if hard {
            let n = 14;
            (n, gen_cnf(&mut hard_rng, n, 60))
        } else {
            let rng = &mut mixed_rng;
            let n = 6 + rng.below_usize(5);
            // ~4.1 clauses per variable lands near the threshold for this
            // mixed-width distribution: both verdicts occur in every bank.
            let m = n * 4 + rng.below_usize(n);
            (n, gen_cnf_mixed(rng, n, m))
        };
        let truth = brute_force(n, &clauses);

        let mut s = fresh_solver(sabotage);
        let vars: Vec<cdcl::Var> = (0..n).map(|_| s.new_var()).collect();
        let mut consistent = true;
        for clause in &clauses {
            let lits: Vec<cdcl::Lit> = clause.iter().map(|&(v, pos)| vars[v].lit(pos)).collect();
            consistent &= s.add_clause(&lits);
        }
        let verdict = if consistent { s.solve() } else { SolveResult::Unsat };
        match (truth, verdict) {
            (Some(_), SolveResult::Sat) => {
                sat_seen += 1;
                if !model_satisfies(&s, &vars, &clauses) {
                    return Err(format!(
                        "cnf bank instance {inst} (n={n}, m={}): SAT model violates the formula",
                        clauses.len()
                    ));
                }
            }
            (None, SolveResult::Unsat) => unsat_seen += 1,
            (t, v) => {
                return Err(format!(
                    "cnf bank instance {inst} (n={n}, m={}): solver says {v:?}, brute force says {}",
                    clauses.len(),
                    if t.is_some() { "SAT" } else { "UNSAT" }
                ));
            }
        }
    }
    // The bank must exercise both verdicts, or the comparison is vacuous.
    if instances >= 16 && (sat_seen == 0 || unsat_seen == 0) {
        return Err(format!(
            "cnf bank degenerate: {sat_seen} SAT / {unsat_seen} UNSAT of {instances}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_solver_passes_battery() {
        solver_battery(None, 32).expect("unsabotaged solver conforms");
    }

    #[test]
    fn every_solver_sabotage_is_detected() {
        for sab in [
            SolverSabotage::SkipBinaryWatch,
            SolverSabotage::ShrinkLearntClause,
            SolverSabotage::MisreportValue,
        ] {
            let r = std::panic::catch_unwind(|| solver_battery(Some(sab), 48));
            let killed = match &r {
                Ok(Err(_)) | Err(_) => true,
                Ok(Ok(())) => false,
            };
            assert!(killed, "solver sabotage {sab:?} survived the battery");
        }
    }
}
