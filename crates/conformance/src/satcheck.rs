//! The CDCL solver battery: brute force as the ground truth.
//!
//! All checks are deterministic:
//!
//! 1. **unit truthfulness** — unit clauses must surface verbatim through
//!    [`cdcl::Solver::value`] (variable 0 included, which is exactly where
//!    the `MisreportValue` mutant lies).
//! 2. **binary-only UNSAT** — the four binary clauses
//!    `(a∨b)(¬a∨b)(a∨¬b)(¬a∨¬b)` are unsatisfiable purely through the
//!    dedicated binary watch lists; a solver that stops visiting them
//!    happily reports SAT. The same formula is re-run under the
//!    everything-on inprocessing config, where an unsound
//!    (variable-set-only) subsumption check deletes three of the four
//!    clauses and flips the verdict.
//! 3. **crafted inprocessing formulas** — one per pass, each asserting both
//!    the verdict/model *and* the pass counter, so the random bank below is
//!    guaranteed to run with the passes actually firing: subsumption +
//!    self-subsuming strengthening (3a), bounded variable elimination with
//!    model reconstruction and restore-on-demand (3b), vivification
//!    shortening an implied clause (3c), vivification *not* shortening a
//!    clause the probe proved nothing about (3d), and the known-UNSAT
//!    pigeonhole formula PHP(8,7), whose few thousand conflicts make
//!    distance-1 chronological backtracks and EMA-forced restarts fire
//!    deterministically (3e).
//! 4. **random CNFs vs exhaustive enumeration** — three sub-banks, each
//!    instance solved under two configs: a mixed-width bank near the
//!    satisfiability threshold, a hard pure 3-CNF bank (n = 14, m = 60)
//!    whose long conflict analyses flush out unsound learnt-clause handling
//!    and mislabeled chronological levels, and a sparse wide-variable bank
//!    (n = 16, widths 1–3) where variable elimination fires heavily. The
//!    second config is the everything-on inprocessing one (simplification
//!    round before every solve, EMA restarts) — except on the hard bank,
//!    where inprocessing would collapse the instances before any search
//!    happens and the chrono/EMA config (inprocessing off, chronological
//!    backtracking from distance 1) runs instead. Sparse instances
//!    additionally take an incremental step — an extra random clause plus
//!    an assumption, checked against brute force on the extended formula —
//!    which usually mentions variables the first solve eliminated
//!    (restore-on-demand).
//!
//! The battery takes the sabotage selector so the mutation harness can run
//! the identical checks against a sabotaged solver.

use cdcl::{CcMin, RestartMode, SolveResult, Solver, SolverConfig, SolverSabotage};
use netlist::rng::SplitMix64;

/// One clause as (variable index, polarity) pairs; `true` = positive.
type Clause = Vec<(usize, bool)>;

fn fresh_solver(sabotage: Option<SolverSabotage>) -> Solver {
    let mut s = Solver::new();
    s.set_sabotage(sabotage);
    s
}

/// Everything-on inprocessing: a simplification round before every solve,
/// chronological backtracking from backjump distance 1, EMA restarts
/// re-evaluated every other conflict. Small instances would never trigger
/// any of it under the defaults.
fn aggressive_solver(sabotage: Option<SolverSabotage>) -> Solver {
    let mut s = Solver::with_config(SolverConfig {
        restart_mode: RestartMode::Ema,
        restart_min_interval: 2,
        reduce_base: 2,
        reduce_increment: 2,
        ccmin: CcMin::Deep,
        chrono_threshold: 1,
        inprocess_trigger: 1,
        inprocess_min_clauses: 0,
        ..SolverConfig::default()
    });
    s.set_sabotage(sabotage);
    s
}

/// The aggressive config *minus* inprocessing. A simplification round
/// collapses the small bank instances before any search happens (zero
/// conflicts), so chronological backtracking and EMA restarts need a config
/// that leaves the formulas intact.
fn chrono_solver(sabotage: Option<SolverSabotage>) -> Solver {
    let mut s = Solver::with_config(SolverConfig {
        restart_mode: RestartMode::Ema,
        restart_min_interval: 2,
        reduce_base: 2,
        reduce_increment: 2,
        ccmin: CcMin::Deep,
        chrono_threshold: 1,
        inprocess_trigger: 0,
        ..SolverConfig::default()
    });
    s.set_sabotage(sabotage);
    s
}

/// Deterministic random CNF: `m` clauses of exactly 3 distinct literals
/// over `n` variables.
fn gen_cnf(rng: &mut SplitMix64, n: usize, m: usize) -> Vec<Clause> {
    gen_cnf_width(rng, n, m, |_| 3)
}

/// Deterministic mixed-width CNF: `m` clauses of 2–4 distinct literals
/// over `n` variables.
fn gen_cnf_mixed(rng: &mut SplitMix64, n: usize, m: usize) -> Vec<Clause> {
    gen_cnf_width(rng, n, m, |rng| 2 + rng.below_usize(3))
}

fn gen_cnf_width(
    rng: &mut SplitMix64,
    n: usize,
    m: usize,
    mut width: impl FnMut(&mut SplitMix64) -> usize,
) -> Vec<Clause> {
    let mut clauses = Vec::with_capacity(m);
    for _ in 0..m {
        let w = width(rng);
        let mut vars: Vec<usize> = Vec::with_capacity(w);
        while vars.len() < w.min(n) {
            let v = rng.below_usize(n);
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        clauses.push(vars.into_iter().map(|v| (v, rng.bool())).collect());
    }
    clauses
}

/// Exhaustive satisfiability check for `n <= 20` variables. Returns a
/// witness assignment (bit `i` = variable `i`) or `None`.
fn brute_force(n: usize, clauses: &[Clause]) -> Option<u64> {
    assert!(n <= 20, "brute force is exponential; keep instances small");
    'outer: for assignment in 0u64..(1 << n) {
        for clause in clauses {
            if !clause
                .iter()
                .any(|&(v, pos)| ((assignment >> v) & 1 == 1) == pos)
            {
                continue 'outer;
            }
        }
        return Some(assignment);
    }
    None
}

fn model_satisfies(solver: &Solver, vars: &[cdcl::Var], clauses: &[Clause]) -> bool {
    clauses.iter().all(|clause| {
        clause
            .iter()
            .any(|&(v, pos)| solver.value(vars[v]).unwrap_or(false) == pos)
    })
}

/// The model must satisfy every *original* clause — including clauses whose
/// variables the inprocessing layer eliminated and reconstructed.
fn check_model(s: &Solver, clauses: &[Vec<cdcl::Lit>], what: &str) -> Result<(), String> {
    for c in clauses {
        if !c.iter().any(|&l| s.value(l.var()) == Some(l.is_positive())) {
            return Err(format!("{what}: model violates original clause {c:?}"));
        }
    }
    Ok(())
}

/// Runs the full solver battery. `instances` scales the random-CNF bank.
///
/// `Ok(())` means every check passed; `Err` carries the first
/// inconsistency (in mutation mode, the kill message).
pub fn solver_battery(
    sabotage: Option<SolverSabotage>,
    instances: usize,
) -> Result<(), String> {
    // 1. Unit truthfulness.
    let mut s = fresh_solver(sabotage);
    let a = s.new_var();
    let b = s.new_var();
    s.add_clause(&[a.positive()]);
    s.add_clause(&[b.negative()]);
    if s.solve() != SolveResult::Sat {
        return Err("unit check: two unit clauses reported unsatisfiable".into());
    }
    if s.value(a) != Some(true) || s.value(b) != Some(false) {
        return Err(format!(
            "unit check: value() misreports units: a={:?} b={:?}",
            s.value(a),
            s.value(b)
        ));
    }

    // 2. Binary-only UNSAT, under the default config (binary watch lists)
    //    and under the everything-on config (the subsumption pass sees four
    //    same-variable-set clauses; only a *literal*-subset check may
    //    delete or strengthen — an unsound variable-set check deletes three
    //    of the four and flips the verdict to SAT).
    for aggressive in [false, true] {
        let mut s = if aggressive {
            aggressive_solver(sabotage)
        } else {
            fresh_solver(sabotage)
        };
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.positive(), b.positive()]);
        s.add_clause(&[a.negative(), b.positive()]);
        s.add_clause(&[a.positive(), b.negative()]);
        let still_ok = s.add_clause(&[a.negative(), b.negative()]);
        if still_ok && s.solve() != SolveResult::Unsat {
            return Err(format!(
                "binary check (aggressive={aggressive}): the complete 2-CNF over {{a,b}} \
                 must be UNSAT"
            ));
        }
    }

    // 3a. Subsumption + self-subsuming strengthening. With a, b, c frozen
    //     (so elimination cannot eat the clauses first), (a∨b) subsumes
    //     (a∨b∨c) and strengthens (¬a∨b∨c) to (b∨c). Both counters must
    //     move, and the model must satisfy the *original* clauses.
    let mut s = aggressive_solver(sabotage);
    let a = s.new_var();
    let b = s.new_var();
    let c = s.new_var();
    for v in [a, b, c] {
        s.set_frozen(v, true);
    }
    let craft = [
        vec![a.positive(), b.positive()],
        vec![a.positive(), b.positive(), c.positive()],
        vec![a.negative(), b.positive(), c.positive()],
    ];
    for cl in &craft {
        s.add_clause(cl);
    }
    if s.solve() != SolveResult::Sat {
        return Err("subsumption check: satisfiable crafted formula reported UNSAT".into());
    }
    check_model(&s, &craft, "subsumption check")?;
    if s.stats().subsumed_clauses == 0 || s.stats().strengthened_clauses == 0 {
        return Err(format!(
            "subsumption check: pass never fired (subsumed={}, strengthened={})",
            s.stats().subsumed_clauses,
            s.stats().strengthened_clauses
        ));
    }

    // 3b. Bounded variable elimination + model reconstruction + restore.
    //     With a and b frozen, only x is eliminable in (a∨x)(¬x∨b); the
    //     single resolvent (a∨b) must be kept — dropping it lets the
    //     search pick a=b=false, and reconstruction then sets x=true,
    //     violating (¬x∨b). A later clause mentioning x plus an assumed
    //     literal exercises restore-on-demand across an incremental call.
    let mut s = aggressive_solver(sabotage);
    let a = s.new_var();
    let x = s.new_var();
    let b = s.new_var();
    s.set_frozen(a, true);
    s.set_frozen(b, true);
    let craft = [
        vec![a.positive(), x.positive()],
        vec![x.negative(), b.positive()],
    ];
    for cl in &craft {
        s.add_clause(cl);
    }
    if s.solve() != SolveResult::Sat {
        return Err("bve check: satisfiable crafted formula reported UNSAT".into());
    }
    check_model(&s, &craft, "bve check")?;
    if s.stats().eliminated_vars == 0 {
        return Err("bve check: elimination never fired on (a∨x)(¬x∨b)".into());
    }
    let c = s.new_var();
    let extended = [
        craft[0].clone(),
        craft[1].clone(),
        vec![x.positive(), c.positive()],
    ];
    s.add_clause(&extended[2]);
    if s.solve_with(&[c.negative()]) != SolveResult::Sat {
        return Err("bve check: restore-on-demand incremental solve reported UNSAT".into());
    }
    if s.value(c) != Some(false) {
        return Err("bve check: assumption ¬c not honored after restore".into());
    }
    check_model(&s, &extended, "bve restore check")?;
    if s.stats().restored_vars == 0 {
        return Err("bve check: restore-on-demand never fired".into());
    }

    // 3c. Vivification. With a, c, d frozen, b is eliminated to the
    //     resolvent (a∨c); probing (a∨c∨d) then assumes ¬a, propagates c
    //     to true through (a∨c), and drops d from the clause.
    let mut s = aggressive_solver(sabotage);
    let a = s.new_var();
    let b = s.new_var();
    let c = s.new_var();
    let d = s.new_var();
    for v in [a, c, d] {
        s.set_frozen(v, true);
    }
    let craft = [
        vec![a.positive(), b.positive()],
        vec![b.negative(), c.positive()],
        vec![a.positive(), c.positive(), d.positive()],
    ];
    for cl in &craft {
        s.add_clause(cl);
    }
    if s.solve() != SolveResult::Sat {
        return Err("vivification check: satisfiable crafted formula reported UNSAT".into());
    }
    check_model(&s, &craft, "vivification check")?;
    if s.stats().vivified_literals == 0 {
        return Err("vivification check: pass never shortened (a∨c∨d)".into());
    }

    // 3d. Vivification soundness: (a∨b∨c) alone proves nothing under any
    //     probe, so the clause must survive intact. Solving under ¬a ∧ ¬b
    //     is SAT only through the literal a buggy pass would drop.
    let mut s = aggressive_solver(sabotage);
    let a = s.new_var();
    let b = s.new_var();
    let c = s.new_var();
    for v in [a, b, c] {
        s.set_frozen(v, true);
    }
    s.add_clause(&[a.positive(), b.positive(), c.positive()]);
    if s.solve_with(&[a.negative(), b.negative()]) != SolveResult::Sat {
        return Err("vivification soundness check: (a∨b∨c) under ¬a∧¬b must be SAT".into());
    }
    if s.value(c) != Some(true) {
        return Err("vivification soundness check: c must be forced true".into());
    }

    // 3e. Chronological backtracking + EMA restarts: the pigeonhole formula
    //     PHP(8,7) is known-UNSAT and needs a few thousand conflicts, during
    //     which distance-1 chronological backtracks and fast/slow LBD
    //     crossovers both fire deterministically. The conflict budget bounds
    //     a sabotaged solver that would otherwise wander forever on
    //     corrupted levels.
    let mut s = chrono_solver(sabotage);
    let (pigeons, holes) = (8usize, 7usize);
    let pv: Vec<Vec<cdcl::Var>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| s.new_var()).collect())
        .collect();
    for row in &pv {
        let lits: Vec<cdcl::Lit> = row.iter().map(|v| v.positive()).collect();
        s.add_clause(&lits);
    }
    for i in 0..pigeons {
        for k in i + 1..pigeons {
            for (vi, vk) in pv[i].iter().zip(&pv[k]) {
                s.add_clause(&[vi.negative(), vk.negative()]);
            }
        }
    }
    s.set_conflict_budget(Some(100_000));
    let verdict = s.solve();
    s.set_conflict_budget(None);
    if verdict != SolveResult::Unsat {
        return Err(format!(
            "pigeonhole check: PHP({pigeons},{holes}) must be UNSAT, solver says {verdict:?}"
        ));
    }
    if s.stats().chrono_backtracks == 0 || s.stats().restarts_forced == 0 {
        return Err(format!(
            "pigeonhole check: chrono/restart machinery never fired (chrono={}, forced={})",
            s.stats().chrono_backtracks,
            s.stats().restarts_forced
        ));
    }

    // 4. Random CNFs vs brute force. Three sub-banks share the check loop
    //    (mixed-width near-threshold, hard pure 3-CNF, sparse wide-variable)
    //    and every instance runs under both the default and the
    //    everything-on inprocessing configs. Near-threshold instances have
    //    few models and force long conflict analyses — where unsound learnt
    //    strengthening and mislabeled chronological levels flip verdicts —
    //    while sparse instances make elimination fire on real formulas.
    let mut mixed_rng = SplitMix64::new(0xCDC1_C0DE);
    let mut hard_rng = SplitMix64::new(0x3C4F_5A7D);
    let mut sparse_rng = SplitMix64::new(0x5BA4_5E17);
    let mut sat_seen = 0usize;
    let mut unsat_seen = 0usize;
    // Aggregated everything-on-config counters: asserted non-zero below so
    // the bank provably exercises the inprocessing passes on real random
    // formulas (not just the crafted ones above).
    let mut agg_inprocessings = 0u64;
    let mut agg_eliminated = 0u64;
    for inst in 0..3 * instances {
        let bank = inst / instances;
        let (n, clauses) = match bank {
            0 => {
                let rng = &mut mixed_rng;
                let n = 6 + rng.below_usize(5);
                // ~4.1 clauses per variable lands near the threshold for
                // this mixed-width distribution: both verdicts occur in
                // every bank.
                let m = n * 4 + rng.below_usize(n);
                (n, gen_cnf_mixed(rng, n, m))
            }
            1 => {
                // Pure 3-CNF at the satisfiability threshold.
                let n = 14;
                (n, gen_cnf(&mut hard_rng, n, 60))
            }
            _ => {
                // Sparse and wide-variabled: many pure / low-occurrence
                // variables, so subsumption and elimination fire heavily.
                let rng = &mut sparse_rng;
                let n = 16;
                let m = 10 + rng.below_usize(8);
                (n, gen_cnf_width(rng, n, m, |rng| 1 + rng.below_usize(3)))
            }
        };
        let truth = brute_force(n, &clauses);
        // Sparse instances take an incremental follow-up: one extra random
        // clause plus one assumed literal, checked against brute force on
        // the extended formula. Drawn before solving so the generator
        // stream never depends on solver behavior.
        let follow_up = if bank == 2 {
            let rng = &mut sparse_rng;
            let extra = gen_cnf_width(rng, n, 1, |rng| 1 + rng.below_usize(3))
                .pop()
                .expect("one clause requested");
            let assume = (rng.below_usize(n), rng.bool());
            let mut extended = clauses.clone();
            extended.push(extra.clone());
            let mut assumed = extended.clone();
            assumed.push(vec![assume]);
            let truth2 = brute_force(n, &assumed);
            Some((extra, assume, extended, truth2))
        } else {
            None
        };

        for aggressive in [false, true] {
            // The hard bank's second run gets the chrono/EMA config instead:
            // under full inprocessing these instances collapse before any
            // search happens, leaving chronological backtracking untested.
            let mut s = match (aggressive, bank) {
                (false, _) => fresh_solver(sabotage),
                (true, 1) => chrono_solver(sabotage),
                (true, _) => aggressive_solver(sabotage),
            };
            let vars: Vec<cdcl::Var> = (0..n).map(|_| s.new_var()).collect();
            let mut consistent = true;
            for clause in &clauses {
                let lits: Vec<cdcl::Lit> =
                    clause.iter().map(|&(v, pos)| vars[v].lit(pos)).collect();
                consistent &= s.add_clause(&lits);
            }
            let verdict = if consistent { s.solve() } else { SolveResult::Unsat };
            match (truth, verdict) {
                (Some(_), SolveResult::Sat) => {
                    if !aggressive {
                        sat_seen += 1;
                    }
                    if !model_satisfies(&s, &vars, &clauses) {
                        return Err(format!(
                            "cnf bank instance {inst} (n={n}, m={}, aggressive={aggressive}): \
                             SAT model violates the formula",
                            clauses.len()
                        ));
                    }
                }
                (None, SolveResult::Unsat) => {
                    if !aggressive {
                        unsat_seen += 1;
                    }
                }
                (t, v) => {
                    return Err(format!(
                        "cnf bank instance {inst} (n={n}, m={}, aggressive={aggressive}): \
                         solver says {v:?}, brute force says {}",
                        clauses.len(),
                        if t.is_some() { "SAT" } else { "UNSAT" }
                    ));
                }
            }
            if let Some((extra, assume, extended, truth2)) = &follow_up {
                let lits: Vec<cdcl::Lit> =
                    extra.iter().map(|&(v, pos)| vars[v].lit(pos)).collect();
                consistent &= s.add_clause(&lits);
                let alit = vars[assume.0].lit(assume.1);
                let verdict2 = if consistent {
                    s.solve_with(&[alit])
                } else {
                    SolveResult::Unsat
                };
                match (truth2, verdict2) {
                    (Some(_), SolveResult::Sat) => {
                        if !model_satisfies(&s, &vars, extended)
                            || s.value(alit.var()) != Some(assume.1)
                        {
                            return Err(format!(
                                "cnf bank instance {inst} incremental step \
                                 (aggressive={aggressive}): SAT model violates the \
                                 extended formula or the assumption"
                            ));
                        }
                    }
                    (None, SolveResult::Unsat) => {}
                    (t, v) => {
                        return Err(format!(
                            "cnf bank instance {inst} incremental step \
                             (aggressive={aggressive}): solver says {v:?}, brute force \
                             says {}",
                            if t.is_some() { "SAT" } else { "UNSAT" }
                        ));
                    }
                }
            }
            if aggressive {
                let st = s.stats();
                agg_inprocessings += st.inprocessings;
                agg_eliminated += st.eliminated_vars;
            }
        }
    }
    // The bank must exercise both verdicts, or the comparison is vacuous.
    if instances >= 16 && (sat_seen == 0 || unsat_seen == 0) {
        return Err(format!(
            "cnf bank degenerate: {sat_seen} SAT / {unsat_seen} UNSAT of {instances}"
        ));
    }
    // Likewise the everything-on runs must actually have inprocessed and
    // eliminated variables somewhere in the bank.
    if instances >= 16 && (agg_inprocessings == 0 || agg_eliminated == 0) {
        return Err(format!(
            "inprocessing bank vacuous: inprocessings={agg_inprocessings} \
             eliminated={agg_eliminated}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_solver_passes_battery() {
        solver_battery(None, 32).expect("unsabotaged solver conforms");
    }

    #[test]
    fn every_solver_sabotage_is_detected() {
        for sab in [
            SolverSabotage::SkipBinaryWatch,
            SolverSabotage::ShrinkLearntClause,
            SolverSabotage::MisreportValue,
            SolverSabotage::UnsoundSubsumption,
            SolverSabotage::BveDropResolvent,
            SolverSabotage::VivifyDropLiteral,
            SolverSabotage::ChronoMislabelLevel,
        ] {
            let r = std::panic::catch_unwind(|| solver_battery(Some(sab), 48));
            let killed = match &r {
                Ok(Err(_)) | Err(_) => true,
                Ok(Ok(())) => false,
            };
            assert!(killed, "solver sabotage {sab:?} survived the battery");
        }
    }
}
