//! A [`qcheck::Gen`] combinator for sequential (DFF-bearing) circuits.
//!
//! The generator produces a [`SeqSpec`] — the interface dimensions plus a
//! synthesis seed — rather than a [`netlist::Circuit`] directly, so failing
//! cases print as a five-number tuple and shrink meaningfully: every
//! dimension shrinks toward its floor and the seed halves toward zero,
//! while [`SeqSpec::build`] stays total by normalizing the gate budget to
//! whatever the output count requires.

use netlist::generate::{self, Profile};
use netlist::rng::SplitMix64;
use netlist::Circuit;
use qcheck::Gen;

/// Interface dimensions and seed of one generated sequential circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqSpec {
    /// Primary inputs (≥ 1).
    pub primary_inputs: usize,
    /// Primary outputs (≥ 1).
    pub primary_outputs: usize,
    /// Flip-flops (≥ 1 — this is the *sequential* generator).
    pub dffs: usize,
    /// Non-inverter gate budget.
    pub gates: usize,
    /// Synthesis seed; part of the circuit identity.
    pub seed: u64,
}

impl SeqSpec {
    /// Synthesizes the circuit. Total for every spec this module can
    /// produce (including shrunk ones): the gate budget is clamped so the
    /// generator invariant `outputs ≤ inputs + gates` always holds.
    pub fn build(&self) -> Circuit {
        let gates = self
            .gates
            .max(2)
            .max(self.primary_outputs.saturating_sub(self.primary_inputs));
        generate::synthesize(&Profile {
            name: format!(
                "seq_{}x{}_{}ff_{}g_s{}",
                self.primary_inputs, self.primary_outputs, self.dffs, gates, self.seed
            ),
            primary_inputs: self.primary_inputs,
            primary_outputs: self.primary_outputs,
            dffs: self.dffs,
            gates,
            inverter_percent: 10,
            seed: self.seed,
        })
        .expect("normalized sequential profile synthesizes")
    }
}

/// Generator for [`SeqSpec`] with fixed, test-friendly ranges.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeqCircuitGen;

/// Floors the shrinker aims for.
const MIN_PIS: usize = 1;
const MIN_POS: usize = 1;
const MIN_DFFS: usize = 1;
const MIN_GATES: usize = 2;

fn shrink_usize(lo: usize, v: usize) -> Vec<usize> {
    let mut out = Vec::new();
    if v <= lo {
        return out;
    }
    out.push(lo);
    let mut delta = (v - lo) / 2;
    while delta > 0 {
        let cand = v - delta;
        if cand != lo && !out.contains(&cand) {
            out.push(cand);
        }
        delta /= 2;
    }
    if v - 1 != lo && !out.contains(&(v - 1)) {
        out.push(v - 1);
    }
    out
}

impl Gen for SeqCircuitGen {
    type Value = SeqSpec;

    fn generate(&self, rng: &mut SplitMix64) -> SeqSpec {
        SeqSpec {
            primary_inputs: MIN_PIS + rng.below_usize(6),
            primary_outputs: MIN_POS + rng.below_usize(4),
            dffs: MIN_DFFS + rng.below_usize(6),
            gates: 8 + rng.below_usize(57),
            seed: rng.next_u64(),
        }
    }

    fn shrink(&self, value: &SeqSpec) -> Vec<SeqSpec> {
        let mut out = Vec::new();
        for pis in shrink_usize(MIN_PIS, value.primary_inputs) {
            out.push(SeqSpec { primary_inputs: pis, ..value.clone() });
        }
        for pos in shrink_usize(MIN_POS, value.primary_outputs) {
            out.push(SeqSpec { primary_outputs: pos, ..value.clone() });
        }
        for dffs in shrink_usize(MIN_DFFS, value.dffs) {
            out.push(SeqSpec { dffs, ..value.clone() });
        }
        for gates in shrink_usize(MIN_GATES, value.gates) {
            out.push(SeqSpec { gates, ..value.clone() });
        }
        // Seed halves toward 0 — smaller seeds are not semantically
        // smaller circuits, but a canonical small seed makes regression
        // entries stable to read.
        let mut seed = value.seed;
        while seed > 0 {
            seed /= 2;
            out.push(SeqSpec { seed, ..value.clone() });
            if out.len() > 64 {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_specs_build_valid_sequential_circuits() {
        let mut rng = SplitMix64::new(0xDF_F5);
        for _ in 0..16 {
            let spec = SeqCircuitGen.generate(&mut rng);
            let c = spec.build();
            c.validate().expect("generated circuit validates");
            assert_eq!(c.dffs().len(), spec.dffs, "{spec:?}");
            assert!(!c.dffs().is_empty(), "sequential generator must emit DFFs");
        }
    }

    #[test]
    fn shrunk_specs_still_build() {
        let mut rng = SplitMix64::new(0xDF_F6);
        let spec = SeqCircuitGen.generate(&mut rng);
        for cand in SeqCircuitGen.shrink(&spec) {
            cand.build().validate().expect("shrunk spec builds");
        }
        // The floor spec itself builds.
        let floor = SeqSpec {
            primary_inputs: MIN_PIS,
            primary_outputs: MIN_POS,
            dffs: MIN_DFFS,
            gates: MIN_GATES,
            seed: 0,
        };
        floor.build().validate().expect("floor spec builds");
    }
}
