//! [`qcheck::Gen`] combinators for sequential (DFF-bearing) circuits and
//! scan-obfuscated session workloads built on them.
//!
//! The generators produce specs — interface dimensions plus seeds — rather
//! than a [`netlist::Circuit`] directly, so failing cases print as small
//! tuples and shrink meaningfully: every dimension shrinks toward its floor
//! and the seed halves toward zero, while the `build`/`lock` constructors
//! stay total by normalizing budgets to whatever the spec requires.

use locking::scan_obfuscation::{self, ScanObfConfig, ScanObfLocked};
use netlist::generate::{self, Profile};
use netlist::rng::SplitMix64;
use netlist::Circuit;
use qcheck::Gen;

/// Interface dimensions and seed of one generated sequential circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqSpec {
    /// Primary inputs (≥ 1).
    pub primary_inputs: usize,
    /// Primary outputs (≥ 1).
    pub primary_outputs: usize,
    /// Flip-flops (≥ 1 — this is the *sequential* generator).
    pub dffs: usize,
    /// Non-inverter gate budget.
    pub gates: usize,
    /// Synthesis seed; part of the circuit identity.
    pub seed: u64,
}

impl SeqSpec {
    /// Synthesizes the circuit. Total for every spec this module can
    /// produce (including shrunk ones): the gate budget is clamped so the
    /// generator invariant holds — the synthesizer taps observation points
    /// before its top-up phase, so the budget must cover the output surplus
    /// with the reserved gates (`gates/8`, min 2) still set aside.
    pub fn build(&self) -> Circuit {
        let surplus = self.primary_outputs.saturating_sub(self.primary_inputs);
        let gates = self.gates.max(2).max(surplus * 8 / 7 + 2);
        generate::synthesize(&Profile {
            name: format!(
                "seq_{}x{}_{}ff_{}g_s{}",
                self.primary_inputs, self.primary_outputs, self.dffs, gates, self.seed
            ),
            primary_inputs: self.primary_inputs,
            primary_outputs: self.primary_outputs,
            dffs: self.dffs,
            gates,
            inverter_percent: 10,
            seed: self.seed,
        })
        .expect("normalized sequential profile synthesizes")
    }
}

/// Generator for [`SeqSpec`] with fixed, test-friendly ranges.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeqCircuitGen;

/// Floors the shrinker aims for.
const MIN_PIS: usize = 1;
const MIN_POS: usize = 1;
const MIN_DFFS: usize = 1;
const MIN_GATES: usize = 2;

fn shrink_usize(lo: usize, v: usize) -> Vec<usize> {
    let mut out = Vec::new();
    if v <= lo {
        return out;
    }
    out.push(lo);
    let mut delta = (v - lo) / 2;
    while delta > 0 {
        let cand = v - delta;
        if cand != lo && !out.contains(&cand) {
            out.push(cand);
        }
        delta /= 2;
    }
    if v - 1 != lo && !out.contains(&(v - 1)) {
        out.push(v - 1);
    }
    out
}

impl Gen for SeqCircuitGen {
    type Value = SeqSpec;

    fn generate(&self, rng: &mut SplitMix64) -> SeqSpec {
        SeqSpec {
            primary_inputs: MIN_PIS + rng.below_usize(6),
            primary_outputs: MIN_POS + rng.below_usize(4),
            dffs: MIN_DFFS + rng.below_usize(6),
            gates: 8 + rng.below_usize(57),
            seed: rng.next_u64(),
        }
    }

    fn shrink(&self, value: &SeqSpec) -> Vec<SeqSpec> {
        let mut out = Vec::new();
        for pis in shrink_usize(MIN_PIS, value.primary_inputs) {
            out.push(SeqSpec { primary_inputs: pis, ..value.clone() });
        }
        for pos in shrink_usize(MIN_POS, value.primary_outputs) {
            out.push(SeqSpec { primary_outputs: pos, ..value.clone() });
        }
        for dffs in shrink_usize(MIN_DFFS, value.dffs) {
            out.push(SeqSpec { dffs, ..value.clone() });
        }
        for gates in shrink_usize(MIN_GATES, value.gates) {
            out.push(SeqSpec { gates, ..value.clone() });
        }
        // Seed halves toward 0 — smaller seeds are not semantically
        // smaller circuits, but a canonical small seed makes regression
        // entries stable to read.
        let mut seed = value.seed;
        while seed > 0 {
            seed /= 2;
            out.push(SeqSpec { seed, ..value.clone() });
            if out.len() > 64 {
                break;
            }
        }
        out
    }
}

/// A scan-obfuscated session workload: a sequential circuit spec plus the
/// dynamic scan-obfuscation profile applied to its scan chains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanSessionSpec {
    /// The underlying sequential circuit.
    pub circuit: SeqSpec,
    /// LFSR width / scan key bits (≥ 1).
    pub key_bits: usize,
    /// Scan chains (clamped by the locker to the DFF count).
    pub num_chains: usize,
    /// Scheme seed (stage placement, keystream-cell assignment, key).
    pub obf_seed: u64,
}

impl ScanSessionSpec {
    /// Builds the circuit and locks its scan chains. Total for every spec
    /// the generator or shrinker can produce: the circuit always has DFFs
    /// and `key_bits ≥ 1`, so [`scan_obfuscation::lock`] cannot reject the
    /// profile.
    pub fn lock(&self) -> (Circuit, ScanObfLocked) {
        let orig = self.circuit.build();
        let locked = scan_obfuscation::lock(
            &orig,
            &ScanObfConfig {
                key_bits: self.key_bits.max(1),
                num_chains: self.num_chains.max(1),
                invert_spacing: 2,
                swap_spacing: 2,
                seed: self.obf_seed,
            },
        )
        .expect("DFF-bearing spec with key bits is lockable");
        (orig, locked)
    }
}

/// Generator for [`ScanSessionSpec`] with fixed, test-friendly ranges.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanSessionGen;

const MIN_KEY_BITS: usize = 1;
const MIN_CHAINS: usize = 1;

impl Gen for ScanSessionGen {
    type Value = ScanSessionSpec;

    fn generate(&self, rng: &mut SplitMix64) -> ScanSessionSpec {
        let mut circuit = SeqCircuitGen.generate(rng);
        // Session unrolling is exponential-ish in chain length through the
        // symbolic stage muxes; keep the state register modest.
        circuit.dffs = MIN_DFFS + rng.below_usize(8);
        ScanSessionSpec {
            circuit,
            key_bits: 2 + rng.below_usize(11),
            num_chains: MIN_CHAINS + rng.below_usize(3),
            obf_seed: rng.next_u64(),
        }
    }

    fn shrink(&self, value: &ScanSessionSpec) -> Vec<ScanSessionSpec> {
        let mut out = Vec::new();
        for circuit in SeqCircuitGen.shrink(&value.circuit) {
            out.push(ScanSessionSpec { circuit, ..value.clone() });
        }
        for key_bits in shrink_usize(MIN_KEY_BITS, value.key_bits) {
            out.push(ScanSessionSpec { key_bits, ..value.clone() });
        }
        for num_chains in shrink_usize(MIN_CHAINS, value.num_chains) {
            out.push(ScanSessionSpec { num_chains, ..value.clone() });
        }
        let mut seed = value.obf_seed;
        while seed > 0 {
            seed /= 2;
            out.push(ScanSessionSpec { obf_seed: seed, ..value.clone() });
            if out.len() > 96 {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_specs_build_valid_sequential_circuits() {
        let mut rng = SplitMix64::new(0xDF_F5);
        for _ in 0..16 {
            let spec = SeqCircuitGen.generate(&mut rng);
            let c = spec.build();
            c.validate().expect("generated circuit validates");
            assert_eq!(c.dffs().len(), spec.dffs, "{spec:?}");
            assert!(!c.dffs().is_empty(), "sequential generator must emit DFFs");
        }
    }

    #[test]
    fn shrunk_specs_still_build() {
        let mut rng = SplitMix64::new(0xDF_F6);
        let spec = SeqCircuitGen.generate(&mut rng);
        for cand in SeqCircuitGen.shrink(&spec) {
            cand.build().validate().expect("shrunk spec builds");
        }
        // The floor spec itself builds.
        let floor = SeqSpec {
            primary_inputs: MIN_PIS,
            primary_outputs: MIN_POS,
            dffs: MIN_DFFS,
            gates: MIN_GATES,
            seed: 0,
        };
        floor.build().validate().expect("floor spec builds");
    }

    #[test]
    fn scan_session_specs_lock_and_shrink_totally() {
        let mut rng = SplitMix64::new(0x5CA0);
        let spec = ScanSessionGen.generate(&mut rng);
        let (_orig, locked) = spec.lock();
        assert_eq!(locked.key_bits(), spec.key_bits);
        for cand in ScanSessionGen.shrink(&spec).into_iter().take(24) {
            cand.lock();
        }
        let floor = ScanSessionSpec {
            circuit: SeqSpec {
                primary_inputs: MIN_PIS,
                primary_outputs: MIN_POS,
                dffs: MIN_DFFS,
                gates: MIN_GATES,
                seed: 0,
            },
            key_bits: MIN_KEY_BITS,
            num_chains: MIN_CHAINS,
            obf_seed: 0,
        };
        floor.lock();
    }
}
