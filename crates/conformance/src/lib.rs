//! Differential conformance suite and mutation-kill harness for the OraP
//! engines.
//!
//! The workspace has four independent ways to compute what a circuit does:
//! a naive per-gate interpreter (re-implemented here, on purpose, from the
//! [`netlist::Circuit`] definition alone), the 64-lane full-sweep kernel
//! ([`netlist::CompiledCircuit::eval_full_into`]), the incremental
//! propagate/commit/revert kernel ([`netlist::EvalScratch`]), and the SAT
//! path (AIG-reduced CNF through the CDCL solver). A bug in any one of them
//! silently corrupts every experiment built on top — so this crate
//! cross-checks all four against each other on deterministic random
//! circuits, and then *proves the checks can fail* by injecting a catalog
//! of semantic mutants into each engine and demanding a 100% kill rate.
//!
//! Modules:
//!
//! - [`mod@reference`]: the naive interpreter used as the differential
//!   anchor.
//! - [`differential`]: the 3-way value-level battery (naive / full sweep /
//!   incremental, including `out_diff` masks and revert snapshots).
//! - [`satcheck`]: solver battery (brute-force CNF comparison, model
//!   validation, unit-value truthfulness).
//! - [`enccheck`]: encoder battery (exhaustive miter ground truth on
//!   crafted locked circuits, I/O-constraint consistency, counterexample
//!   genuineness) — the SAT leg of the 4-way check.
//! - [`fsimcheck`]: fault-simulator battery (sequential vs chunked-parallel
//!   detection across thread counts, counter truthfulness).
//! - [`enginecheck`]: attack-engine control-layer battery (interrupt-poll
//!   honesty, oracle-query ledger/budget truthfulness).
//! - [`attack_loop`]: full lock → attack → key recovery → exact-miter
//!   verification loops across schemes × attacks.
//! - [`scancheck`]: scan-obfuscation battery (DynUnlock + K-Gate Lock
//!   conformance loops, unrolled-session vs chip-stepping differential,
//!   session CNF admission).
//! - [`mutation`]: the mutant catalog and the kill-matrix runner.
//! - [`seqgen`]: a [`qcheck::Gen`] combinator for sequential (DFF-bearing)
//!   circuits with a shrinker.
//!
//! The mutants live behind test-only hooks in the production crates
//! (`CompiledCircuit::mutate_*`, `EvalScratch::sabotage_drop_undo`,
//! `cdcl::SolverSabotage`, `attacks::aigcnf::EncoderSabotage`); this crate
//! only ever *activates* them on private copies, never in shipping code
//! paths. See DESIGN.md §"Conformance and mutation kill" for the rationale
//! and EXPERIMENTS.md for how to run the full vs smoke matrix and replay
//! pinned qcheck seeds.

#![warn(missing_docs)]

pub mod attack_loop;
pub mod differential;
pub mod enccheck;
pub mod enginecheck;
pub mod fsimcheck;
pub mod mutation;
pub mod reference;
pub mod satcheck;
pub mod scancheck;
pub mod seqgen;
