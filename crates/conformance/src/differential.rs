//! The 3-way differential battery over the simulation engines.
//!
//! One run cross-checks, on a single circuit:
//!
//! 1. **full sweep vs naive** — [`netlist::CompiledCircuit::eval_full_into`]
//!    against [`crate::reference::eval_nets`], every net, 64 lanes;
//! 2. **incremental vs naive** — a deterministic walk of single-input
//!    changes through [`netlist::EvalScratch::propagate`], comparing every
//!    net *and* the returned `out_diff` mask against the naive recomputation
//!    of the proposed state;
//! 3. **revert snapshots** — every other step is reverted, and the scratch
//!    must restore the committed state bit-exactly.
//!
//! The same entry point doubles as the engine-mutant executioner: an
//! [`EngineFault`] is injected into the compiled artifact (or the scratch's
//! undo log) before the walk, and the battery must notice. The walk flips
//! every input in round-robin order so fanout-level faults cannot hide
//! behind untouched inputs.

use netlist::rng::SplitMix64;
use netlist::{Circuit, CompiledCircuit, EvalScratch};

/// A semantic fault injected into the compiled engine under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineFault {
    /// Flip one gate's function to its complement (And↔Or, Xor↔Xnor, …) on
    /// the topologically last gate.
    FlipKind,
    /// Rewire one fanin edge of the topologically last multi-fanin gate to
    /// a primary input it did not read.
    CrossFanin,
    /// Swap a dependent (producer, consumer) pair in the cached
    /// levelization order, so the full sweep reads a stale value.
    SwapOrder,
    /// Drop one combinational output from the output mask, corrupting the
    /// `out_diff` change reporting of the incremental kernel.
    ClearOutputMask,
    /// Detach a primary input's fanout edges, so incremental propagation
    /// never wakes its readers.
    RedirectFanout,
    /// Drop the first undo-log record, so the next revert leaves a stale
    /// net behind.
    DropUndo,
    /// Skew one gate's CSR fanin-start offset by one — the classic
    /// off-by-one a streaming compile can plant in the flat pools: the gate
    /// loses its first fanin and its id-predecessor gains a stray one.
    SkewFaninStart,
}

/// All engine faults, in catalog order.
pub const ENGINE_FAULTS: [EngineFault; 7] = [
    EngineFault::FlipKind,
    EngineFault::CrossFanin,
    EngineFault::SwapOrder,
    EngineFault::ClearOutputMask,
    EngineFault::RedirectFanout,
    EngineFault::DropUndo,
    EngineFault::SkewFaninStart,
];

/// Injects a compiled-artifact fault. Returns `false` when the circuit has
/// no applicable site (e.g. no gate whose fanin is itself a gate for
/// [`EngineFault::SwapOrder`]).
fn inject_compiled(fault: EngineFault, cc: &mut CompiledCircuit) -> bool {
    let order: Vec<u32> = cc.order().iter().map(|id| id.index() as u32).collect();
    match fault {
        EngineFault::FlipKind => {
            for &n in order.iter().rev() {
                if cc.kind_of(n).is_some() {
                    return cc.mutate_flip_kind(n);
                }
            }
            false
        }
        EngineFault::CrossFanin => {
            for &n in order.iter().rev() {
                if cc.kind_of(n).is_none() || cc.fanin(n).is_empty() {
                    continue;
                }
                let old = cc.fanin(n)[0];
                let new = cc
                    .inputs()
                    .iter()
                    .map(|id| id.index() as u32)
                    .find(|&i| i != old);
                if let Some(new) = new {
                    return cc.mutate_set_fanin(n, 0, new);
                }
            }
            false
        }
        EngineFault::SwapOrder => {
            // A producer that is itself a gate: inputs are written before
            // the order walk, so only gate-to-gate dependencies can be
            // broken by reordering.
            for &n in order.iter().rev() {
                if cc.kind_of(n).is_none() {
                    continue;
                }
                if let Some(&f) = cc
                    .fanin(n)
                    .iter()
                    .find(|&&f| cc.kind_of(f).is_some())
                {
                    cc.mutate_swap_order(cc.rank(f) as usize, cc.rank(n) as usize);
                    return true;
                }
            }
            false
        }
        EngineFault::ClearOutputMask => {
            // Target the last *uniquely listed* output so the expected
            // out_diff genuinely loses a contribution.
            let outs: Vec<u32> = cc.outputs().iter().map(|id| id.index() as u32).collect();
            for &o in outs.iter().rev() {
                if outs.iter().filter(|&&x| x == o).count() == 1 {
                    return cc.mutate_clear_output_mask(o);
                }
            }
            false
        }
        EngineFault::RedirectFanout => {
            let ins: Vec<u32> = cc.inputs().iter().map(|id| id.index() as u32).collect();
            for &i in &ins {
                let edges = cc.fanout(i).len();
                if edges > 0 {
                    // Detach every edge: self-targets are inert (popped
                    // events on undriven nets are skipped).
                    for k in 0..edges {
                        cc.mutate_redirect_fanout(i, k, i);
                    }
                    return true;
                }
            }
            false
        }
        EngineFault::SkewFaninStart => {
            // A multi-fanin gate, so the skewed slice is still non-empty
            // and the lost first fanin genuinely changes the function.
            for &n in order.iter().rev() {
                if cc.kind_of(n).is_some() && cc.fanin(n).len() >= 2 {
                    return cc.mutate_skew_fanin_start(n);
                }
            }
            false
        }
        EngineFault::DropUndo => unreachable!("DropUndo targets the scratch, not the artifact"),
    }
}

fn compare_nets(stage: &str, step: usize, got: &[u64], want: &[u64]) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!(
            "{stage} (step {step}): value array length {} vs {}",
            got.len(),
            want.len()
        ));
    }
    for (net, (&g, &w)) in got.iter().zip(want).enumerate() {
        if g != w {
            return Err(format!(
                "{stage} (step {step}): net {net} disagrees: {g:#018x} vs naive {w:#018x}"
            ));
        }
    }
    Ok(())
}

/// Runs the differential battery on one circuit.
///
/// - `fault = None`: conformance mode. `Ok(true)` means every engine agreed
///   on every net of every step; `Err` is a genuine engine inconsistency.
/// - `fault = Some(_)`: mutation mode. `Err` is the *desired* outcome (the
///   battery detected the mutant); `Ok(true)` means the mutant survived
///   this circuit; `Ok(false)` means the fault had no applicable site here.
///
/// The walk is fully deterministic in `(circuit, seed, steps)`.
pub fn differential_check(
    c: &Circuit,
    fault: Option<EngineFault>,
    seed: u64,
    steps: usize,
) -> Result<bool, String> {
    let mut cc = CompiledCircuit::compile(c).map_err(|e| format!("compile failed: {e:?}"))?;
    if let Some(f) = fault {
        if f != EngineFault::DropUndo && !inject_compiled(f, &mut cc) {
            return Ok(false);
        }
    }
    let input_nets: Vec<u32> = cc.inputs().iter().map(|id| id.index() as u32).collect();
    let n_inputs = input_nets.len();
    assert!(n_inputs > 0, "battery circuits have inputs");
    let mut rng = SplitMix64::new(seed ^ 0x5EED_D1FF);

    let mut inwords: Vec<u64> = (0..n_inputs).map(|_| rng.next_u64()).collect();

    // Leg 1 vs leg 2: one full sweep against the naive interpreter.
    let mut full = Vec::new();
    cc.eval_full_into(&inwords, &mut full);
    let mut cur_naive = crate::reference::eval_nets(c, &inwords);
    compare_nets("full sweep vs naive", 0, &full, &cur_naive)?;

    // Leg 3: the incremental walk. Base state, then single-input changes,
    // alternating revert (even steps) and commit (odd steps) so both undo
    // paths stay exercised — revert first, so a dropped undo record is
    // observable before it gets absolved by a commit.
    let mut scratch = EvalScratch::new(&cc);
    scratch.eval_full(&cc, &inwords);
    if fault == Some(EngineFault::DropUndo) {
        scratch.sabotage_drop_undo(0);
    }
    let outputs = c.comb_outputs();
    for step in 0..steps {
        let i = step % n_inputs;
        let flip = rng.next_u64() | 1; // nonzero: every step changes lanes
        let w = inwords[i] ^ flip;
        let diff = scratch.propagate(&cc, input_nets[i], w);

        let mut proposed = inwords.clone();
        proposed[i] = w;
        let naive = crate::reference::eval_nets(c, &proposed);
        let mut expected_diff = 0u64;
        for o in &outputs {
            expected_diff |= naive[o.index()] ^ cur_naive[o.index()];
        }
        if diff != expected_diff {
            return Err(format!(
                "out_diff mask (step {step}): propagate returned {diff:#018x}, naive expects {expected_diff:#018x}"
            ));
        }
        compare_nets("incremental vs naive", step, scratch.values(), &naive)?;

        if step % 2 == 0 {
            scratch.revert();
            compare_nets("revert snapshot", step, scratch.values(), &cur_naive)?;
        } else {
            scratch.commit();
            inwords = proposed;
            cur_naive = naive;
        }
    }
    Ok(true)
}

/// The hand-crafted engine-battery circuit: small, independent output
/// cones and gate-to-gate dependencies, so *every* [`EngineFault`] has an
/// applicable site and a deterministic observation path (e.g. the last
/// output `Xor(c, d)` changes alone when input `c` flips, which is what
/// convicts [`EngineFault::ClearOutputMask`]).
pub fn crafted_engine_circuit() -> Circuit {
    let mut c = Circuit::new("conformance_engine_crafted");
    let a = c.add_input("a");
    let b = c.add_input("b");
    let ci = c.add_input("c");
    let d = c.add_input("d");
    let n1 = c.add_gate(netlist::GateKind::And, vec![a, b], "n1").unwrap();
    let n2 = c.add_gate(netlist::GateKind::Or, vec![n1, ci], "n2").unwrap();
    let n3 = c.add_gate(netlist::GateKind::Not, vec![n2], "n3").unwrap();
    let n4 = c.add_gate(netlist::GateKind::Xor, vec![n3, a], "n4").unwrap();
    let o1 = c.add_gate(netlist::GateKind::Nand, vec![n4, d], "o1").unwrap();
    let o2 = c.add_gate(netlist::GateKind::Xor, vec![ci, d], "o2").unwrap();
    c.mark_output(o1);
    c.mark_output(o2);
    c.validate().expect("crafted circuit is well-formed");
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_engines_agree_on_crafted_circuit() {
        let c = crafted_engine_circuit();
        assert_eq!(differential_check(&c, None, 7, 16), Ok(true));
    }

    #[test]
    fn every_engine_fault_is_detected_on_crafted_circuit() {
        let c = crafted_engine_circuit();
        for fault in ENGINE_FAULTS {
            let r = differential_check(&c, Some(fault), 7, 16);
            assert!(
                r.is_err(),
                "engine fault {fault:?} survived the crafted battery: {r:?}"
            );
        }
    }
}
