//! The mutant catalog and the kill-matrix runner.
//!
//! Each mutant is one *semantic* fault planted behind a test-only hook in a
//! production crate (`netlist`, `cdcl`, `attacks`): wrong gate function,
//! broken topological order, invisible binary clauses, complemented CNF
//! literal, and so on. The runner executes the conformance battery that
//! can observe each mutant's layer and records whether it was **killed**
//! (some check failed or panicked) or **survived**. A surviving mutant is
//! a hole in the test suite — the matrix is asserted at 100% kill both in
//! `cargo test` and in the CI smoke bench.
//!
//! The soundness bar for catalog membership: a mutant must change the
//! observable semantics of its engine. (E.g. skipping one binary-watch
//! *push* direction is provably sound — conflicts still surface through
//! the other direction — so the solver mutant skips the whole binary-visit
//! pass instead.)

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use attacks::aigcnf::EncoderSabotage;
use attacks::engine::EngineSabotage;
use cdcl::SolverSabotage;

use crate::differential::{self, EngineFault};
use crate::fsimcheck::{self, FsimFault};
use crate::scancheck::{self, ScanSabotage};
use crate::{enccheck, enginecheck, satcheck};

/// Battery scale: `Smoke` is the CI configuration, `Full` the nightly one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small circuit set and CNF bank; runs in seconds.
    Smoke,
    /// Larger random-circuit sweep and CNF bank, plus the full
    /// scheme × attack loop battery in the baseline.
    Full,
}

/// What a mutant corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutantKind {
    /// A compiled-netlist / incremental-kernel fault.
    Engine(EngineFault),
    /// A CDCL solver sabotage.
    Solver(SolverSabotage),
    /// An AIG-CNF encoder sabotage.
    Encoder(EncoderSabotage),
    /// A parallel fault-simulation fault.
    Fsim(FsimFault),
    /// An attack-engine control-layer (`AttackCtl`) sabotage.
    AttackEngine(EngineSabotage),
    /// A scan-obfuscation scheme/attack sabotage (unroller, DynUnlock
    /// learning, K-Gate key bookkeeping).
    Scan(ScanSabotage),
}

/// One catalog entry.
#[derive(Debug, Clone, Copy)]
pub struct MutantSpec {
    /// Stable identifier (used in the JSON matrix).
    pub id: &'static str,
    /// Workspace layer the fault lives in.
    pub layer: &'static str,
    /// One-line description of the planted fault.
    pub description: &'static str,
    /// The fault itself.
    pub kind: MutantKind,
}

/// The checked-in mutant catalog: 24 semantic mutants spanning the
/// `netlist`, `sim`(kernel), `atpg`, `sat`, `locking` and `attacks` layers.
pub fn catalog() -> Vec<MutantSpec> {
    use EngineFault::*;
    vec![
        MutantSpec {
            id: "netlist-flip-gate-kind",
            layer: "netlist",
            description: "complement one gate's function in the compiled artifact",
            kind: MutantKind::Engine(FlipKind),
        },
        MutantSpec {
            id: "netlist-cross-fanin",
            layer: "netlist",
            description: "rewire a gate fanin edge to an unrelated primary input",
            kind: MutantKind::Engine(CrossFanin),
        },
        MutantSpec {
            id: "netlist-swap-topo-order",
            layer: "netlist",
            description: "swap a dependent producer/consumer pair in the levelization order",
            kind: MutantKind::Engine(SwapOrder),
        },
        MutantSpec {
            id: "sim-clear-output-mask",
            layer: "sim",
            description: "drop one output from the incremental kernel's out_diff mask",
            kind: MutantKind::Engine(ClearOutputMask),
        },
        MutantSpec {
            id: "sim-detach-fanout",
            layer: "sim",
            description: "detach a primary input's fanout edges from the event queue",
            kind: MutantKind::Engine(RedirectFanout),
        },
        MutantSpec {
            id: "sim-drop-undo-record",
            layer: "sim",
            description: "silently drop the first undo-log record before a revert",
            kind: MutantKind::Engine(DropUndo),
        },
        MutantSpec {
            id: "netlist-skew-csr-offset",
            layer: "netlist",
            description: "skew one gate's CSR fanin-start offset by one in the flat pools",
            kind: MutantKind::Engine(SkewFaninStart),
        },
        MutantSpec {
            id: "atpg-drop-chunk-boundary",
            layer: "atpg",
            description: "drop the first fault of every parallel fault-sim chunk after the first",
            kind: MutantKind::Fsim(FsimFault::DropChunkBoundary),
        },
        MutantSpec {
            id: "sat-skip-binary-watch",
            layer: "sat",
            description: "skip the binary-watch visit pass during unit propagation",
            kind: MutantKind::Solver(SolverSabotage::SkipBinaryWatch),
        },
        MutantSpec {
            id: "sat-shrink-learnt-clause",
            layer: "sat",
            description: "drop the last literal of every learnt clause of length >= 3",
            kind: MutantKind::Solver(SolverSabotage::ShrinkLearntClause),
        },
        MutantSpec {
            id: "sat-misreport-value",
            layer: "sat",
            description: "complement the model value reported for variable 0",
            kind: MutantKind::Solver(SolverSabotage::MisreportValue),
        },
        MutantSpec {
            id: "sat-unsound-subsumption",
            layer: "sat",
            description: "subsume by variable set instead of literal set during inprocessing",
            kind: MutantKind::Solver(SolverSabotage::UnsoundSubsumption),
        },
        MutantSpec {
            id: "sat-bve-drop-resolvent",
            layer: "sat",
            description: "drop the last resolvent when eliminating a variable",
            kind: MutantKind::Solver(SolverSabotage::BveDropResolvent),
        },
        MutantSpec {
            id: "sat-vivify-drop-literal",
            layer: "sat",
            description: "vivification drops a literal the probe never proved redundant",
            kind: MutantKind::Solver(SolverSabotage::VivifyDropLiteral),
        },
        MutantSpec {
            id: "sat-chrono-mislabel-level",
            layer: "sat",
            description: "record a chronologically backtracked literal at the backjump level",
            kind: MutantKind::Solver(SolverSabotage::ChronoMislabelLevel),
        },
        MutantSpec {
            id: "attacks-flip-gate-clause-lit",
            layer: "attacks",
            description: "complement one literal in the AND-gate CNF clauses",
            kind: MutantKind::Encoder(EncoderSabotage::FlipGateClauseLit),
        },
        MutantSpec {
            id: "attacks-skip-miter-output",
            layer: "attacks",
            description: "drop the last key-dependent output from the miter disjunction",
            kind: MutantKind::Encoder(EncoderSabotage::SkipMiterOutput),
        },
        MutantSpec {
            id: "attacks-flip-io-constraint-bit",
            layer: "attacks",
            description: "complement the oracle response bit asserted for output 0",
            kind: MutantKind::Encoder(EncoderSabotage::FlipIoConstraintBit),
        },
        MutantSpec {
            id: "attacks-flip-xor-gadget-lit",
            layer: "attacks",
            description: "complement one literal in the 4-clause XOR-cluster gadget",
            kind: MutantKind::Encoder(EncoderSabotage::FlipXorGadgetLit),
        },
        MutantSpec {
            id: "attacks-skip-interrupt-poll",
            layer: "attacks",
            description: "skip the cooperative interrupt poll and never arm the solver hook",
            kind: MutantKind::AttackEngine(EngineSabotage::SkipInterruptPoll),
        },
        MutantSpec {
            id: "attacks-undercount-oracle-query",
            layer: "attacks",
            description: "count only every other oracle query in the budget ledger",
            kind: MutantKind::AttackEngine(EngineSabotage::UndercountOracleQuery),
        },
        MutantSpec {
            id: "locking-scanobf-wrong-hop-permutation",
            layer: "locking",
            description: "shift every keyed swap stage one hop down in the session unroller",
            kind: MutantKind::Scan(ScanSabotage::WrongHopPermutation),
        },
        MutantSpec {
            id: "attacks-dyn-unlock-drop-frame",
            layer: "attacks",
            description: "drop the first shift frame from every learned scan-session response",
            kind: MutantKind::Scan(ScanSabotage::DropUnrollFrame),
        },
        MutantSpec {
            id: "locking-kgate-decode-table-swap",
            layer: "locking",
            description: "swap the first two decode-table words in the recorded K-Gate key",
            kind: MutantKind::Scan(ScanSabotage::DecodeTableSwap),
        },
    ]
}

/// Result of running the battery against one mutant.
#[derive(Debug, Clone)]
pub struct MutantResult {
    /// Catalog id.
    pub id: &'static str,
    /// Catalog layer.
    pub layer: &'static str,
    /// Catalog description.
    pub description: &'static str,
    /// Whether some conformance check failed (or panicked) — the goal.
    pub killed: bool,
    /// The first failing check's message (or `"survived"`).
    pub killed_by: String,
    /// Wall-clock nanoseconds spent on this mutant.
    pub wall_ns: u64,
}

/// The full kill matrix plus the clean-baseline verdict.
#[derive(Debug, Clone)]
pub struct MatrixReport {
    /// Whether the un-mutated engines pass every battery.
    pub baseline_ok: bool,
    /// Baseline failure detail (empty when `baseline_ok`).
    pub baseline_detail: String,
    /// One row per catalog mutant.
    pub results: Vec<MutantResult>,
}

impl MatrixReport {
    /// Ids of surviving mutants.
    pub fn survivors(&self) -> Vec<&'static str> {
        self.results
            .iter()
            .filter(|r| !r.killed)
            .map(|r| r.id)
            .collect()
    }

    /// Killed fraction in `[0, 1]`.
    pub fn kill_rate(&self) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        self.results.iter().filter(|r| r.killed).count() as f64 / self.results.len() as f64
    }
}

/// The engine-battery circuit set for a scale: the crafted circuit plus
/// deterministic random ones (comb-only and sequential-profile).
fn engine_circuits(scale: Scale) -> Vec<netlist::Circuit> {
    let mut out = vec![differential::crafted_engine_circuit()];
    let specs: &[(u64, usize, usize, usize)] = match scale {
        Scale::Smoke => &[(11, 6, 3, 40)],
        Scale::Full => &[(11, 6, 3, 40), (12, 8, 4, 70), (13, 10, 5, 120)],
    };
    for &(seed, i, o, g) in specs {
        out.push(netlist::generate::random_comb(seed, i, o, g).expect("synthesizable"));
    }
    // One DFF-bearing profile: its combinational part exercises the
    // pseudo-input/pseudo-output boundary.
    out.push(
        crate::seqgen::SeqSpec {
            primary_inputs: 4,
            primary_outputs: 3,
            dffs: 3,
            gates: 40,
            seed: 21,
        }
        .build(),
    );
    out
}

fn cnf_instances(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 32,
        Scale::Full => 96,
    }
}

fn enc_patterns(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 6,
        Scale::Full => 16,
    }
}

/// Runs the battery that can observe `kind`. `Ok(())` = all checks passed
/// (mutant survived / baseline clean), `Err` = first detection.
fn run_battery(kind: Option<MutantKind>, scale: Scale) -> Result<(), String> {
    match kind {
        None => {
            for (ci, c) in engine_circuits(scale).iter().enumerate() {
                match differential::differential_check(c, None, 0xBA5E + ci as u64, 24) {
                    Ok(true) => {}
                    Ok(false) => unreachable!("no fault to be inapplicable"),
                    Err(e) => return Err(format!("engine battery, circuit {ci}: {e}")),
                }
            }
            satcheck::solver_battery(None, cnf_instances(scale))?;
            enccheck::encoder_battery(None, enc_patterns(scale))?;
            fsimcheck::fsim_battery(None)?;
            enginecheck::engine_battery(None)?;
            scancheck::scan_battery(None, scale)?;
            if scale == Scale::Full {
                crate::attack_loop::attack_loop_battery()?;
            }
            Ok(())
        }
        Some(MutantKind::Engine(fault)) => {
            let mut applicable = 0usize;
            for (ci, c) in engine_circuits(scale).iter().enumerate() {
                match differential::differential_check(c, Some(fault), 0xBA5E + ci as u64, 24) {
                    Ok(true) => applicable += 1,
                    Ok(false) => {}
                    Err(e) => return Err(format!("circuit {ci}: {e}")),
                }
            }
            if applicable == 0 {
                // The crafted circuit guarantees a site for every fault;
                // reaching this means the injector regressed.
                return Err("fault had no applicable site on any battery circuit".into());
            }
            Ok(())
        }
        Some(MutantKind::Solver(sab)) => satcheck::solver_battery(Some(sab), cnf_instances(scale)),
        Some(MutantKind::Encoder(sab)) => {
            enccheck::encoder_battery(Some(sab), enc_patterns(scale))
        }
        Some(MutantKind::Fsim(f)) => fsimcheck::fsim_battery(Some(f)),
        Some(MutantKind::AttackEngine(sab)) => enginecheck::engine_battery(Some(sab)),
        Some(MutantKind::Scan(sab)) => scancheck::scan_battery(Some(sab), scale),
    }
}

/// Runs the whole matrix: the clean baseline first, then every catalog
/// mutant. Panics inside a battery count as kills (a mutant that crashes
/// an engine was noticed).
pub fn run_matrix(scale: Scale) -> MatrixReport {
    let baseline = catch_unwind(AssertUnwindSafe(|| run_battery(None, scale)));
    let (baseline_ok, baseline_detail) = match baseline {
        Ok(Ok(())) => (true, String::new()),
        Ok(Err(e)) => (false, e),
        Err(_) => (false, "baseline battery panicked".into()),
    };

    let mut results = Vec::new();
    for spec in catalog() {
        let start = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| run_battery(Some(spec.kind), scale)));
        let (killed, killed_by) = match outcome {
            Ok(Ok(())) => (false, "survived".to_string()),
            Ok(Err(e)) => (true, e),
            Err(_) => (true, "battery panicked (counts as a kill)".to_string()),
        };
        results.push(MutantResult {
            id: spec.id,
            layer: spec.layer,
            description: spec.description,
            killed,
            killed_by,
            wall_ns: start.elapsed().as_nanos() as u64,
        });
    }
    MatrixReport {
        baseline_ok,
        baseline_detail,
        results,
    }
}
