//! Scan-obfuscation conformance battery: the lock→attack→recover→verify
//! loops for the two scan-era schemes (dynamic scan obfuscation and K-Gate
//! Lock), plus a sequential differential leg cross-checking the unrolled
//! session CNF view against reference chip stepping.
//!
//! This is the kill battery for the three [`ScanSabotage`] mutants:
//!
//! - a wrong-hop swap in the session unroller must surface as a divergence
//!   between the unrolled combinational circuit and the real chip's
//!   [`ObfScanSim`] session (checks 3 and 4),
//! - a dropped unroll frame in DynUnlock's CNF learning must surface as a
//!   failed seed recovery in the full attack loop (check 5),
//! - a swapped K-Gate decode table must surface as a recorded key that no
//!   longer decodes its classes (check 1).

use attacks::aigcnf::ReducedEncoder;
use attacks::dyn_unlock::{
    DynUnlockConfig, DynUnlockEngine, DynUnlockSabotage, ScanSessionOracle,
};
use attacks::engine::{self, AttackCtl};
use attacks::{verify, CombOracle};
use cdcl::{SolveResult, Solver};
use locking::kgate::{self, KGateConfig, KGateSabotage};
use locking::scan_obfuscation::{
    self, ObfScanSim, ScanObfConfig, ScanObfLocked, UnrollOptions, UnrollSabotage,
    UnrolledSession,
};
use netlist::rng::SplitMix64;
use netlist::Circuit;

use crate::mutation::Scale;
use crate::reference;

/// Test-only semantic faults in the scan-obfuscation scheme/attack stack,
/// united here so the mutation kill matrix drives all three through one
/// battery. Each maps onto the hook in its home crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanSabotage {
    /// [`UnrollSabotage::WrongHopPermutation`] in the session unroller.
    WrongHopPermutation,
    /// [`DynUnlockSabotage::DropUnrollFrame`] in the attack's CNF learning.
    DropUnrollFrame,
    /// [`KGateSabotage::DecodeTableSwap`] in the K-Gate key bookkeeping.
    DecodeTableSwap,
}

/// The fixed scan-obfuscation battery workload: a counter whose eight
/// flip-flops give two chains of length four, so the swap stages include a
/// mid-chain hop (position ≥ 1) where the wrong-hop mutant is semantic.
fn scanobf_workload() -> (Circuit, ScanObfLocked) {
    let orig = netlist::samples::counter(8);
    let locked = scan_obfuscation::lock(
        &orig,
        &ScanObfConfig {
            key_bits: 8,
            num_chains: 2,
            invert_spacing: 2,
            swap_spacing: 2,
            seed: 3,
        },
    )
    .expect("counter(8) is lockable");
    (orig, locked)
}

/// A second, state-hiding workload for the Full scale: only one primary
/// output, so most of the captured state is observable solely through the
/// obfuscated unload frames.
fn hidden_state_workload() -> (Circuit, ScanObfLocked) {
    let orig = crate::seqgen::SeqSpec {
        primary_inputs: 3,
        primary_outputs: 1,
        dffs: 8,
        gates: 40,
        seed: 29,
    }
    .build();
    let locked = scan_obfuscation::lock(
        &orig,
        &ScanObfConfig {
            key_bits: 12,
            num_chains: 2,
            invert_spacing: 3,
            swap_spacing: 2,
            seed: 11,
        },
    )
    .expect("generated sequential circuit is lockable");
    (orig, locked)
}

fn unroll_with(
    locked: &ScanObfLocked,
    sabotage: Option<UnrollSabotage>,
) -> UnrolledSession {
    locked
        .unroll(&UnrollOptions { sabotage, ..UnrollOptions::default() })
        .expect("unroll succeeds on a lockable workload")
}

/// Runs the scan-obfuscation battery, optionally with one planted fault.
/// `Ok(())` = every check passed (clean baseline, or the mutant survived);
/// `Err` = first detection.
///
/// # Errors
///
/// Returns the first failing check's description.
pub fn scan_battery(sabotage: Option<ScanSabotage>, scale: Scale) -> Result<(), String> {
    let kg_sab = (sabotage == Some(ScanSabotage::DecodeTableSwap))
        .then_some(KGateSabotage::DecodeTableSwap);
    let unroll_sab = (sabotage == Some(ScanSabotage::WrongHopPermutation))
        .then_some(UnrollSabotage::WrongHopPermutation);
    let dyn_sab = (sabotage == Some(ScanSabotage::DropUnrollFrame))
        .then_some(DynUnlockSabotage::DropUnrollFrame);

    let (kg_patterns, diff_trials, full_workloads) = match scale {
        Scale::Smoke => (256, 12, false),
        Scale::Full => (1024, 48, true),
    };

    // Check 1: K-Gate lock→decode round-trip — the recorded key must make
    // the locked circuit transparent. (Kills the decode-table swap: the
    // netlist keeps the true table, the recorded key decodes the wrong
    // classes.)
    let kg_original = netlist::samples::ripple_adder(4);
    let kg_config = KGateConfig { classes: 4, word_bits: 3, seed: 7 };
    let kg_locked = kgate::lock_with_sabotage(&kg_original, &kg_config, kg_sab)
        .map_err(|e| format!("kgate lock failed: {e}"))?;
    match kg_locked.verify_against(&kg_original, kg_patterns) {
        Ok(true) => {}
        Ok(false) => {
            return Err(
                "kgate round-trip: the recorded key does not decode its classes".into(),
            );
        }
        Err(e) => return Err(format!("kgate round-trip: simulation failed: {e}")),
    }

    // Check 2: K-Gate full conformance loop — lock → SAT attack → recover →
    // exact-miter key equivalence.
    {
        let mut oracle = CombOracle::from_locked(&kg_locked)
            .map_err(|e| format!("kgate oracle: {e}"))?;
        let out = attacks::sat::attack(
            &kg_locked,
            &mut oracle,
            &attacks::sat::SatAttackConfig::default(),
        );
        let key = out.key.ok_or_else(|| {
            format!("kgate attack loop: SAT attack failed ({:?})", out.failure)
        })?;
        if let Some(cex) = verify::key_exact_counterexample(&kg_locked, &key) {
            return Err(format!(
                "kgate attack loop: recovered key is not exactly correct (cex {cex:?})"
            ));
        }
    }

    // Checks 3–5 run per scan-obfuscation workload.
    let mut workloads = vec![scanobf_workload()];
    if full_workloads {
        workloads.push(hidden_state_workload());
    }
    for (wi, (orig, locked)) in workloads.iter().enumerate() {
        let unrolled = unroll_with(locked, unroll_sab);

        // Check 3: sequential differential leg — the unrolled combinational
        // session, evaluated by the *naive reference interpreter*, must
        // reproduce the chip model's SeqSim-based session stepping for
        // random seeds and stimuli. (Kills the wrong-hop permutation.)
        let mut chip_any = ObfScanSim::new(locked, &locked.correct_key)
            .map_err(|e| format!("workload {wi}: chip model: {e}"))?;
        let mut rng = SplitMix64::new(0x5caf_f01d ^ wi as u64);
        let n_stream = unrolled.load_cycles * unrolled.num_chains;
        let n_pis = orig.primary_inputs().len();
        for trial in 0..diff_trials {
            let key: Vec<bool> = if trial == 0 {
                locked.correct_key.clone()
            } else {
                (0..locked.key_bits()).map(|_| rng.bool()).collect()
            };
            let stream: Vec<bool> = (0..n_stream).map(|_| rng.bool()).collect();
            let pis: Vec<bool> = (0..n_pis).map(|_| rng.bool()).collect();
            let mut chip = ObfScanSim::new(locked, &key)
                .map_err(|e| format!("workload {wi}: chip model: {e}"))?;
            let want = chip.session(unrolled.load_cycles, unrolled.unload_cycles, &stream, &pis);
            let mut x = key.clone();
            x.extend(&stream);
            x.extend(&pis);
            let got = reference::eval_bits(&unrolled.locked.circuit, &x);
            if got != want {
                return Err(format!(
                    "workload {wi}: unrolled session diverges from chip stepping \
                     (trial {trial}, key {key:?})"
                ));
            }
        }

        // Check 4: CNF admission leg — a real chip response under the
        // correct seed must be satisfiable in the AIG-reduced encoding of
        // the unrolled session. (Also kills the wrong-hop permutation, on
        // the exact encoding path the attack uses.)
        {
            let stream: Vec<bool> = (0..n_stream).map(|_| rng.bool()).collect();
            let pis: Vec<bool> = (0..n_pis).map(|_| rng.bool()).collect();
            let y = chip_any.session(unrolled.load_cycles, unrolled.unload_cycles, &stream, &pis);
            let mut x = stream.clone();
            x.extend(&pis);
            let mut solver = Solver::new();
            let mut enc = ReducedEncoder::new(&unrolled.locked, &mut solver, 1);
            let ok = enc.add_io_constraint(&mut solver, 0, &x, &y);
            let assumptions: Vec<cdcl::Lit> = enc
                .key_vars(0)
                .iter()
                .zip(&locked.correct_key)
                .map(|(&v, &b)| v.lit(b))
                .collect();
            if !ok || solver.solve_with(&assumptions) != SolveResult::Sat {
                return Err(format!(
                    "workload {wi}: correct chip session rejected by the unrolled CNF"
                ));
            }
        }

        // Check 5: the DynUnlock conformance loop — lock → attack through
        // the scan-session oracle → recover → exact-miter seed equivalence.
        // (Kills the dropped unroll frame: misaligned constraints rule out
        // the true seed.)
        {
            let clean_unroll = unroll_with(locked, None);
            let mut oracle = ScanSessionOracle::new(locked, &clean_unroll)
                .map_err(|e| format!("workload {wi}: session oracle: {e}"))?;
            let engine = DynUnlockEngine {
                config: DynUnlockConfig {
                    max_iterations: 64,
                    sabotage: dyn_sab,
                    ..DynUnlockConfig::for_session(&clean_unroll)
                },
            };
            let out = engine::run(
                &engine,
                &clean_unroll.locked,
                &mut oracle,
                &mut AttackCtl::new(),
            );
            let key = out.key.ok_or_else(|| {
                format!(
                    "workload {wi}: dyn_unlock failed to recover a seed ({:?})",
                    out.failure
                )
            })?;
            if let Some(cex) = verify::key_exact_counterexample(&clean_unroll.locked, &key) {
                return Err(format!(
                    "workload {wi}: dyn_unlock seed is not session-equivalent (cex {cex:?})"
                ));
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_battery_passes_smoke() {
        scan_battery(None, Scale::Smoke).expect("clean scan battery passes");
    }

    #[test]
    fn every_scan_mutant_is_killed_at_smoke() {
        for sab in [
            ScanSabotage::WrongHopPermutation,
            ScanSabotage::DropUnrollFrame,
            ScanSabotage::DecodeTableSwap,
        ] {
            assert!(
                scan_battery(Some(sab), Scale::Smoke).is_err(),
                "{sab:?} must be detected"
            );
        }
    }
}
