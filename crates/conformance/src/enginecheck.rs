//! Attack-engine control-layer battery: proves the [`AttackCtl`] interrupt
//! poll and oracle-query ledger actually do their jobs.
//!
//! The checks here are the kill battery for the two
//! [`EngineSabotage`] mutants: a skipped interrupt poll must surface as an
//! attack that ignores a raised cancel flag, and an undercounting ledger
//! must surface as a budget that lets extra queries through to the oracle
//! (and an accounting mismatch against the oracle's own counter).

use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use attacks::engine::{self, AttackCtl, EngineSabotage};
use attacks::sat::SatEngine;
use attacks::{CombOracle, FailureReason, Oracle};
use locking::LockedCircuit;

fn battery_lock() -> LockedCircuit {
    locking::random::lock(
        &netlist::samples::ripple_adder(4),
        &locking::random::RllConfig { key_bits: 8, seed: 3 },
    )
    .expect("lockable")
}

fn ctl_with(sabotage: Option<EngineSabotage>) -> AttackCtl {
    let mut ctl = AttackCtl::new();
    ctl.set_sabotage(sabotage);
    ctl
}

/// Runs the control-layer battery, optionally with a sabotaged ctl.
/// `Ok(())` = every check passed (clean baseline, or the mutant survived);
/// `Err` = first detection.
///
/// # Errors
///
/// Returns the first failing check's description.
pub fn engine_battery(sabotage: Option<EngineSabotage>) -> Result<(), String> {
    let locked = battery_lock();
    let engine = SatEngine::default();

    // Check 1: a pre-raised cancel flag stops the attack before any oracle
    // query — the cooperative interrupt poll must observe it.
    {
        let mut oracle = CombOracle::from_locked(&locked).expect("valid lock");
        let mut ctl = ctl_with(sabotage).with_cancel(Arc::new(AtomicBool::new(true)));
        let out = engine::run(&engine, &locked, &mut oracle, &mut ctl);
        if out.failure != Some(FailureReason::Cancelled) {
            return Err(format!(
                "interrupt poll: raised cancel flag was ignored \
                 (outcome: key={:?} failure={:?})",
                out.key.is_some(),
                out.failure
            ));
        }
        if oracle.queries_attempted() != 0 {
            return Err(format!(
                "interrupt poll: {} oracle queries despite a pre-raised cancel",
                oracle.queries_attempted()
            ));
        }
    }

    // Check 2: a query budget of B lets exactly B queries reach the oracle,
    // and the ctl ledger agrees with the oracle's own attempt counter.
    {
        const BUDGET: u64 = 2;
        let mut oracle = CombOracle::from_locked(&locked).expect("valid lock");
        let mut ctl = ctl_with(sabotage).with_query_budget(Some(BUDGET));
        let out = engine::run(&engine, &locked, &mut oracle, &mut ctl);
        if out.failure != Some(FailureReason::QueryBudgetExhausted) {
            return Err(format!(
                "query ledger: budget {BUDGET} not reported exhausted \
                 (outcome: key={:?} failure={:?})",
                out.key.is_some(),
                out.failure
            ));
        }
        if oracle.queries_attempted() as u64 != BUDGET {
            return Err(format!(
                "query ledger: budget {BUDGET} but {} queries reached the oracle",
                oracle.queries_attempted()
            ));
        }
        if ctl.queries() != oracle.queries_attempted() as u64 {
            return Err(format!(
                "query ledger: ctl counted {} queries, oracle saw {}",
                ctl.queries(),
                oracle.queries_attempted()
            ));
        }
    }

    // Check 3: on an unconstrained run the ledger and the oracle agree
    // exactly, and the outcome reports the same number.
    {
        let mut oracle = CombOracle::from_locked(&locked).expect("valid lock");
        let mut ctl = ctl_with(sabotage);
        let out = engine::run(&engine, &locked, &mut oracle, &mut ctl);
        if ctl.queries() != oracle.queries_attempted() as u64 {
            return Err(format!(
                "query ledger: ctl counted {} queries on a free run, oracle saw {}",
                ctl.queries(),
                oracle.queries_attempted()
            ));
        }
        if out.oracle_queries != oracle.queries_attempted() {
            return Err(format!(
                "query ledger: outcome reports {} queries, oracle saw {}",
                out.oracle_queries,
                oracle.queries_attempted()
            ));
        }
    }

    Ok(())
}
