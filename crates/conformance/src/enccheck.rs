//! The SAT-leg battery: AIG-reduced CNF encoding vs exhaustive simulation.
//!
//! The miter built by [`attacks::aigcnf::ReducedEncoder`] is the fourth
//! engine of the conformance suite (after naive, full-sweep and
//! incremental simulation). Its verdicts are checked two ways:
//!
//! - **exhaustive ground truth** on small locked circuits: every candidate
//!   key is compared against the correct key over the *entire* data input
//!   space with the naive interpreter; the miter must agree exactly, and a
//!   returned counterexample must be *genuine* — replaying it through the
//!   simulator must actually show differing outputs. (A broken encoding
//!   can produce a SAT verdict with a bogus model; verdict-only checks
//!   never notice.)
//! - **I/O-constraint consistency**: a correct oracle response must stay
//!   satisfiable under the correct key, and a corrupted response must not.
//!
//! The crafted circuits pin down specific encoder paths: a plain AND key
//! gate exercises the `Slot::Gate` clause emitter, and a two-level XOR key
//! chain survives cofactoring as a genuine `Slot::Xor` cluster (XOR gates
//! with a constant operand fold to aliases, so random locks rarely cover
//! the 4-clause XOR gadget).

use std::collections::HashMap;

use attacks::aigcnf::{EncoderSabotage, ReducedEncoder};
use attacks::verify;
use cdcl::{SolveResult, Solver};
use locking::LockedCircuit;
use netlist::rng::SplitMix64;
use netlist::{Circuit, GateKind, NetId};

/// Assembles a full combinational input assignment from data bits (in
/// `data_nets` order) and key bits (in `locked.key_inputs` order).
fn assemble_input(
    locked: &LockedCircuit,
    data_nets: &[NetId],
    x: &[bool],
    key: &[bool],
) -> Vec<bool> {
    let inputs = locked.circuit.comb_inputs();
    let pos: HashMap<NetId, usize> = inputs.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let mut v = vec![false; inputs.len()];
    for (&net, &bit) in data_nets.iter().zip(x) {
        v[pos[&net]] = bit;
    }
    for (&net, &bit) in locked.key_inputs.iter().zip(key) {
        v[pos[&net]] = bit;
    }
    v
}

/// Output vector of the locked circuit under (`x`, `key`), via the naive
/// reference interpreter.
fn outputs_under(locked: &LockedCircuit, data_nets: &[NetId], x: &[bool], key: &[bool]) -> Vec<bool> {
    crate::reference::eval_bits(&locked.circuit, &assemble_input(locked, data_nets, x, key))
}

/// Data input nets: combinational inputs minus key inputs, in order (the
/// same convention as [`ReducedEncoder::data_inputs`]).
fn data_nets(locked: &LockedCircuit) -> Vec<NetId> {
    locked
        .circuit
        .comb_inputs()
        .into_iter()
        .filter(|n| !locked.key_inputs.contains(n))
        .collect()
}

/// Exhaustive key-equivalence ground truth: the first data assignment on
/// which the two keys produce different outputs, or `None`. Only usable
/// for small data widths.
fn exhaustive_counterexample(
    locked: &LockedCircuit,
    data: &[NetId],
    key_a: &[bool],
    key_b: &[bool],
) -> Option<Vec<bool>> {
    let w = data.len();
    assert!(w <= 12, "exhaustive ground truth needs a small data space");
    for pat in 0u64..(1 << w) {
        let x: Vec<bool> = (0..w).map(|i| (pat >> i) & 1 == 1).collect();
        if outputs_under(locked, data, &x, key_a) != outputs_under(locked, data, &x, key_b) {
            return Some(x);
        }
    }
    None
}

/// [`verify::keys_exact_counterexample`] with an optional encoder sabotage
/// installed — the mutation harness runs the identical check against a
/// corrupted encoder.
pub fn keys_counterexample_with(
    locked: &LockedCircuit,
    key_a: &[bool],
    key_b: &[bool],
    sabotage: Option<EncoderSabotage>,
) -> Option<Vec<bool>> {
    let mut solver = Solver::new();
    let mut enc = ReducedEncoder::new(locked, &mut solver, 2);
    enc.set_sabotage(sabotage);
    enc.assert_miter(&mut solver, 0, 1, None);
    for (i, (&a, &b)) in key_a.iter().zip(key_b).enumerate() {
        solver.add_clause(&[enc.key_vars(0)[i].lit(a)]);
        solver.add_clause(&[enc.key_vars(1)[i].lit(b)]);
    }
    match solver.solve() {
        SolveResult::Unsat => None,
        SolveResult::Sat => Some(
            enc.data_vars()
                .iter()
                .map(|&v| solver.value(v).unwrap_or(false))
                .collect(),
        ),
        SolveResult::Unknown => unreachable!("no conflict budget was set"),
    }
}

/// Crafted lock A: `out0 = And(a, k)` plus a key-independent second output.
/// Exercises the plain AND/gate clause emitter of the encoder.
pub fn crafted_gate_lock() -> LockedCircuit {
    let mut c = Circuit::new("conformance_enc_gate");
    let a = c.add_input("a");
    let b = c.add_input("b");
    let k = c.add_input("k0");
    let o0 = c.add_gate(GateKind::And, vec![a, k], "o0").unwrap();
    let o1 = c.add_gate(GateKind::Or, vec![a, b], "o1").unwrap();
    c.mark_output(o0);
    c.mark_output(o1);
    c.validate().expect("well-formed");
    LockedCircuit {
        circuit: c,
        key_inputs: vec![k],
        correct_key: vec![true],
        scheme: "conformance-crafted-gate",
    }
}

/// Crafted lock B: `out = (a ^ k1) ^ k2`. Both XOR clusters keep two
/// non-constant operands under the miter's symbolic cofactor, so the
/// encoder's 4-clause XOR gadget is on the path. The key space has a
/// parity symmetry: `[t,f]` is functionally identical to the correct
/// `[f,t]`, which the exact checker must report as equivalent.
pub fn crafted_xor_lock() -> LockedCircuit {
    let mut c = Circuit::new("conformance_enc_xor");
    let a = c.add_input("a");
    let k1 = c.add_input("k0");
    let k2 = c.add_input("k1");
    let x1 = c.add_gate(GateKind::Xor, vec![a, k1], "x1").unwrap();
    let out = c.add_gate(GateKind::Xor, vec![x1, k2], "out").unwrap();
    c.mark_output(out);
    c.validate().expect("well-formed");
    LockedCircuit {
        circuit: c,
        key_inputs: vec![k1, k2],
        correct_key: vec![false, true],
        scheme: "conformance-crafted-xor",
    }
}

/// Candidate keys for a locked circuit: the correct key, every single-bit
/// flip, and the all-flipped key.
fn candidate_keys(locked: &LockedCircuit) -> Vec<Vec<bool>> {
    let correct = locked.correct_key.clone();
    let mut out = vec![correct.clone()];
    for i in 0..correct.len() {
        let mut k = correct.clone();
        k[i] = !k[i];
        out.push(k);
    }
    out.push(correct.iter().map(|&b| !b).collect());
    out.dedup();
    out
}

/// The locked circuits the encoder battery runs over.
fn battery_items() -> Vec<LockedCircuit> {
    let rll = locking::random::lock(
        &netlist::samples::ripple_adder(2),
        &locking::random::RllConfig { key_bits: 4, seed: 11 },
    )
    .expect("lockable");
    let wll = locking::weighted::lock(
        &netlist::generate::random_comb(5, 6, 3, 40).expect("synthesizable"),
        &locking::weighted::WllConfig {
            key_bits: 6,
            control_width: 3,
            seed: 9,
        },
    )
    .expect("lockable");
    vec![crafted_gate_lock(), crafted_xor_lock(), rll, wll]
}

/// Runs the encoder battery. `patterns` scales the I/O-constraint check.
///
/// `Ok(())` means the encoder agreed with exhaustive simulation on every
/// circuit and candidate key; `Err` carries the first discrepancy.
pub fn encoder_battery(
    sabotage: Option<EncoderSabotage>,
    patterns: usize,
) -> Result<(), String> {
    for locked in battery_items() {
        let name = locked.circuit.name().to_string();
        let data = data_nets(&locked);

        // Exact-equivalence verdicts vs exhaustive ground truth.
        for cand in candidate_keys(&locked) {
            let truth = exhaustive_counterexample(&locked, &data, &locked.correct_key, &cand);
            let miter = keys_counterexample_with(&locked, &locked.correct_key, &cand, sabotage);
            match (&truth, &miter) {
                (_, Some(x)) => {
                    // A counterexample must be genuine, whatever the truth
                    // verdict: bogus models are how a broken encoding
                    // "finds" differences that do not exist.
                    let ya = outputs_under(&locked, &data, x, &locked.correct_key);
                    let yb = outputs_under(&locked, &data, x, &cand);
                    if ya == yb {
                        return Err(format!(
                            "{name}: miter counterexample {x:?} for key {cand:?} does not \
                             distinguish the keys in simulation"
                        ));
                    }
                }
                (Some(x), None) => {
                    return Err(format!(
                        "{name}: miter claims key {cand:?} is equivalent, but simulation \
                         distinguishes at {x:?}"
                    ));
                }
                (None, None) => {}
            }
        }

        // I/O-constraint consistency under the correct key.
        let mut rng = SplitMix64::new(0x10C0_0001 ^ data.len() as u64);
        for _ in 0..patterns {
            let x: Vec<bool> = (0..data.len()).map(|_| rng.bool()).collect();
            let y = outputs_under(&locked, &data, &x, &locked.correct_key);

            let mut solver = Solver::new();
            let mut enc = ReducedEncoder::new(&locked, &mut solver, 1);
            enc.set_sabotage(sabotage);
            let ok = enc.add_io_constraint(&mut solver, 0, &x, &y);
            let assumptions: Vec<cdcl::Lit> = enc
                .key_vars(0)
                .iter()
                .zip(&locked.correct_key)
                .map(|(&v, &b)| v.lit(b))
                .collect();
            if !ok || solver.solve_with(&assumptions) != SolveResult::Sat {
                return Err(format!(
                    "{name}: correct oracle response on {x:?} rejected by the encoding"
                ));
            }

            let mut y_bad = y.clone();
            y_bad[0] = !y_bad[0];
            let mut solver = Solver::new();
            let mut enc = ReducedEncoder::new(&locked, &mut solver, 1);
            enc.set_sabotage(sabotage);
            let ok = enc.add_io_constraint(&mut solver, 0, &x, &y_bad);
            let assumptions: Vec<cdcl::Lit> = enc
                .key_vars(0)
                .iter()
                .zip(&locked.correct_key)
                .map(|(&v, &b)| v.lit(b))
                .collect();
            if ok && solver.solve_with(&assumptions) == SolveResult::Sat {
                return Err(format!(
                    "{name}: corrupted oracle response on {x:?} accepted under the correct key"
                ));
            }
        }
    }
    Ok(())
}

/// The clean leg-4 cross-check used by the property suite: the exact SAT
/// verdict on `candidate` must be consistent with sampled simulation, and
/// any counterexample must replay as a genuine difference.
pub fn miter_cross_check(locked: &LockedCircuit, candidate: &[bool]) -> Result<(), String> {
    let data = data_nets(locked);
    let sampled_ok = attacks::key_is_functionally_correct(locked, candidate, 256)
        .map_err(|e| format!("sampled check failed: {e:?}"))?;
    match verify::keys_exact_counterexample(locked, candidate, &locked.correct_key) {
        None => {
            if !sampled_ok {
                return Err(
                    "miter says exactly equivalent, but sampling found a mismatch".into(),
                );
            }
        }
        Some(x) => {
            let ya = outputs_under(locked, &data, &x, candidate);
            let yb = outputs_under(locked, &data, &x, &locked.correct_key);
            if ya == yb {
                return Err(format!(
                    "miter counterexample {x:?} does not replay as a difference in simulation"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_encoder_passes_battery() {
        encoder_battery(None, 6).expect("unsabotaged encoder conforms");
    }

    #[test]
    fn every_encoder_sabotage_is_detected() {
        for sab in [
            EncoderSabotage::FlipGateClauseLit,
            EncoderSabotage::SkipMiterOutput,
            EncoderSabotage::FlipIoConstraintBit,
            EncoderSabotage::FlipXorGadgetLit,
        ] {
            let r = std::panic::catch_unwind(|| encoder_battery(Some(sab), 6));
            let killed = match &r {
                Ok(Err(_)) | Err(_) => true,
                Ok(Ok(())) => false,
            };
            assert!(killed, "encoder sabotage {sab:?} survived the battery");
        }
    }
}
