//! Fault-simulator battery: sequential vs chunked-parallel detection.
//!
//! [`atpg::FaultSim`] has two detection paths over the same compiled
//! artifact: the sequential [`detect_batch`](atpg::FaultSim::detect_batch)
//! and the coarse-chunked, work-stealing
//! [`detect_batch_par`](atpg::FaultSim::detect_batch_par). The parallel
//! path is *specified* to be bit-identical to the sequential one for any
//! thread count — chunk boundaries are a pure function of the circuit and
//! the fault list, and the per-worker scratch is restored after every
//! fault. This battery enforces that contract across thread counts and
//! doubles as the executioner for the chunk-boundary mutant
//! ([`FsimFault::DropChunkBoundary`]).

use atpg::{collapse, enumerate_faults, FaultSim};
use exec::Pool;
use netlist::rng::SplitMix64;
use netlist::Circuit;

/// A semantic fault injected into the parallel fault-simulation path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsimFault {
    /// Silently drop the first fault of every chunk after the first — the
    /// classic off-by-one a chunked re-partition can introduce at chunk
    /// boundaries.
    DropChunkBoundary,
}

/// The battery circuit set: the crafted engine circuit (small enough that
/// the mass-balanced chunk plan degenerates to one fault per chunk, so a
/// boundary fault drops almost everything) plus two deterministic random
/// circuits large enough to produce multi-fault chunks.
fn battery_circuits() -> Vec<Circuit> {
    vec![
        crate::differential::crafted_engine_circuit(),
        netlist::generate::random_comb(3, 10, 6, 300).expect("synthesizable"),
        netlist::generate::random_comb(5, 8, 5, 160).expect("synthesizable"),
    ]
}

/// Runs the fault-sim battery.
///
/// - `fault = None`: conformance mode — the parallel detected set must be
///   bit-identical to the sequential one on every circuit, batch and
///   thread count, and the engine counters must be truthful.
/// - `fault = Some(_)`: mutation mode — `Err` is the *desired* outcome.
///
/// The sequential path never consults the sabotage flag, so it stays an
/// honest reference even on a sabotaged simulator.
pub fn fsim_battery(fault: Option<FsimFault>) -> Result<(), String> {
    for (ci, c) in battery_circuits().iter().enumerate() {
        let faults = collapse(c, enumerate_faults(c));
        let mut sim =
            FaultSim::new(c).map_err(|e| format!("circuit {ci}: compile failed: {e:?}"))?;
        match fault {
            Some(FsimFault::DropChunkBoundary) => sim.sabotage_drop_chunk_boundary(),
            None => {}
        }
        let n_in = sim.compiled().inputs().len();
        let mut rng = SplitMix64::new(0xF51A + ci as u64);
        for batch in 0..2 {
            let words: Vec<u64> = (0..n_in).map(|_| rng.next_u64()).collect();
            let seq = sim.detect_batch(&words, &faults);
            for threads in [1usize, 2, 4] {
                let pool = Pool::with_threads(threads);
                let (par, counters) = sim.detect_batch_par_counted(&pool, &words, &faults);
                if par != seq {
                    return Err(format!(
                        "circuit {ci}, batch {batch}, {threads} threads: parallel \
                         detected {} faults, sequential detected {}",
                        par.len(),
                        seq.len()
                    ));
                }
                if counters.full_evals != 1 || counters.incremental_props != faults.len() as u64 {
                    return Err(format!(
                        "circuit {ci}, batch {batch}, {threads} threads: untruthful \
                         counters {counters:?} for {} faults",
                        faults.len()
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_paths_agree() {
        assert_eq!(fsim_battery(None), Ok(()));
    }

    #[test]
    fn chunk_boundary_mutant_is_detected() {
        let r = fsim_battery(Some(FsimFault::DropChunkBoundary));
        assert!(r.is_err(), "chunk-boundary mutant survived: {r:?}");
    }
}
