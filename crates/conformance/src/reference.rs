//! The naive reference interpreter — the differential anchor.
//!
//! Deliberately shares *nothing* with the compiled engine: no
//! [`netlist::Levelization`], no CSR pools, no event queue. Values are
//! computed by a memoized depth-first walk over the [`netlist::Circuit`]
//! gate definitions, word-parallel over `u64` lanes (one pattern per bit),
//! with the gate semantics re-derived from [`netlist::GateKind`] here. If
//! this module and `netlist::compiled` ever disagree, one of them is wrong
//! — which is exactly the property the conformance battery leans on.

use netlist::{Circuit, GateKind, NetId};

/// Evaluates one gate over word lanes. Kept private-by-convention simple:
/// a straight fold matching the documented [`GateKind::eval`] semantics.
fn fold(kind: GateKind, mut vals: impl Iterator<Item = u64>) -> u64 {
    match kind {
        GateKind::And => vals.fold(!0u64, |a, x| a & x),
        GateKind::Nand => !vals.fold(!0u64, |a, x| a & x),
        GateKind::Or => vals.fold(0u64, |a, x| a | x),
        GateKind::Nor => !vals.fold(0u64, |a, x| a | x),
        GateKind::Xor => vals.fold(0u64, |a, x| a ^ x),
        GateKind::Xnor => !vals.fold(0u64, |a, x| a ^ x),
        GateKind::Not => !vals.next().expect("NOT takes one fanin"),
        GateKind::Buf => vals.next().expect("BUFF takes one fanin"),
        GateKind::Const0 => 0,
        GateKind::Const1 => !0,
    }
}

/// Evaluates every net of the combinational part, word-parallel: lane `b`
/// of `input_words[i]` is the value of combinational input `i` in pattern
/// `b`. Returns one word per net, indexed by net id.
///
/// # Panics
///
/// Panics if `input_words.len()` differs from the combinational input
/// count, or if the circuit is cyclic (the walk would recurse forever, so
/// it asserts progress instead).
pub fn eval_nets(c: &Circuit, input_words: &[u64]) -> Vec<u64> {
    let inputs = c.comb_inputs();
    assert_eq!(
        input_words.len(),
        inputs.len(),
        "expected {} input words",
        inputs.len()
    );
    let n = c.num_nets();
    let mut values = vec![0u64; n];
    let mut known = vec![false; n];
    for (net, &w) in inputs.iter().zip(input_words) {
        values[net.index()] = w;
        known[net.index()] = true;
    }
    // Iterative memoized DFS: (net, next fanin position to inspect).
    let mut stack: Vec<(NetId, usize)> = Vec::new();
    for id in c.net_ids() {
        if known[id.index()] {
            continue;
        }
        stack.push((id, 0));
        while let Some((cur, pin)) = stack.pop() {
            if known[cur.index()] {
                continue;
            }
            let Some(g) = c.gate(cur) else {
                // Undriven non-input net: validate() rejects these, but be
                // total anyway (value stays 0, matching the kernels' resize
                // default).
                known[cur.index()] = true;
                continue;
            };
            let unresolved = g
                .fanin
                .iter()
                .enumerate()
                .skip(pin)
                .find(|(_, f)| !known[f.index()]);
            match unresolved {
                Some((i, &f)) => {
                    assert!(
                        stack.len() <= 2 * n,
                        "cyclic circuit: DFS stack exceeded {} entries",
                        2 * n
                    );
                    stack.push((cur, i));
                    stack.push((f, 0));
                }
                None => {
                    values[cur.index()] =
                        fold(g.kind, g.fanin.iter().map(|&f| values[f.index()]));
                    known[cur.index()] = true;
                }
            }
        }
    }
    values
}

/// Evaluates the combinational outputs only, word-parallel, in
/// [`Circuit::comb_outputs`] order.
pub fn eval_outputs(c: &Circuit, input_words: &[u64]) -> Vec<u64> {
    let values = eval_nets(c, input_words);
    c.comb_outputs()
        .iter()
        .map(|o| values[o.index()])
        .collect()
}

/// Single-pattern convenience: evaluates the combinational outputs for one
/// `bool` input assignment.
pub fn eval_bits(c: &Circuit, input: &[bool]) -> Vec<bool> {
    let words: Vec<u64> = input.iter().map(|&b| if b { 1 } else { 0 }).collect();
    eval_outputs(c, &words).iter().map(|&w| w & 1 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;

    /// Hand-built half adder: the truth table is checked bit by bit, so the
    /// reference itself is anchored to something human-verifiable.
    #[test]
    fn half_adder_truth_table() {
        let mut c = netlist::Circuit::new("half_adder");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let sum = c.add_gate(netlist::GateKind::Xor, vec![a, b], "sum").unwrap();
        let carry = c.add_gate(netlist::GateKind::And, vec![a, b], "carry").unwrap();
        c.mark_output(sum);
        c.mark_output(carry);
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let out = eval_bits(&c, &[va, vb]);
            assert_eq!(out, vec![va ^ vb, va & vb], "a={va} b={vb}");
        }
    }

    /// Word-parallel evaluation matches 64 independent single-bit runs on a
    /// sample circuit with reconvergence (c17).
    #[test]
    fn word_lanes_match_single_patterns() {
        let c = samples::c17();
        let width = c.comb_inputs().len();
        let mut rng = netlist::rng::SplitMix64::new(0xABCD);
        let words: Vec<u64> = (0..width).map(|_| rng.next_u64()).collect();
        let wide = eval_outputs(&c, &words);
        for lane in 0..64 {
            let bits: Vec<bool> = words.iter().map(|&w| (w >> lane) & 1 == 1).collect();
            let single = eval_bits(&c, &bits);
            for (j, &bit) in single.iter().enumerate() {
                assert_eq!((wide[j] >> lane) & 1 == 1, bit, "lane {lane} output {j}");
            }
        }
    }
}
