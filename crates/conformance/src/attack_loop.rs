//! Full-pipeline conformance: lock → attack → key recovery → exact verify.
//!
//! Every (scheme × attack) pair runs end to end on a small deterministic
//! circuit, and the recovered key is judged twice: by sampled simulation
//! ([`attacks::key_is_functionally_correct`], the fast pre-filter) and by
//! the exact SAT miter ([`attacks::verify`]). The two verdicts must be
//! consistent — an exact-equivalent key can never fail sampling — and for
//! the attacks whose theory guarantees exactness on termination (the SAT
//! attack and Double-DIP), the exact verdict itself is asserted.

use attacks::engine::{self, AttackCtl, AttackEngine};
use attacks::{appsat, double_dip, hill_climbing, sat, sensitization, verify, CombOracle};
use locking::LockedCircuit;

/// Locking schemes covered by the loop battery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Random XOR/XNOR insertion (RLL).
    Rll,
    /// Fault-analysis weighted insertion (WLL).
    Wll,
    /// Stripped-functionality logic locking (SFLL-HD).
    Sfll,
}

/// Attacks covered by the loop battery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    /// The SAT attack — exact on termination.
    Sat,
    /// AppSAT — approximate, early-exit.
    AppSat,
    /// Double-DIP — exact on termination.
    DoubleDip,
    /// Hill climbing — approximate, simulation-driven.
    HillClimbing,
    /// Key sensitization — may be inconclusive by design.
    Sensitization,
}

/// All schemes, in battery order.
pub const SCHEMES: [Scheme; 3] = [Scheme::Rll, Scheme::Wll, Scheme::Sfll];
/// All attacks, in battery order.
pub const ATTACKS: [AttackKind; 5] = [
    AttackKind::Sat,
    AttackKind::AppSat,
    AttackKind::DoubleDip,
    AttackKind::HillClimbing,
    AttackKind::Sensitization,
];

/// One row of the loop battery report.
#[derive(Debug, Clone)]
pub struct LoopRow {
    /// Scheme under attack.
    pub scheme: Scheme,
    /// Attack run.
    pub attack: AttackKind,
    /// Whether a key was returned.
    pub recovered: bool,
    /// Exact SAT-miter verdict on the recovered key (None if no key).
    pub exact: Option<bool>,
    /// Sampled-simulation verdict on the recovered key (None if no key).
    pub sampled: Option<bool>,
}

fn lock_for(scheme: Scheme) -> LockedCircuit {
    match scheme {
        Scheme::Rll => locking::random::lock(
            &netlist::generate::random_comb(7, 8, 4, 60).expect("synthesizable"),
            &locking::random::RllConfig { key_bits: 6, seed: 5 },
        )
        .expect("lockable"),
        Scheme::Wll => locking::weighted::lock(
            &netlist::generate::random_comb(7, 8, 4, 60).expect("synthesizable"),
            &locking::weighted::WllConfig {
                key_bits: 6,
                control_width: 3,
                seed: 5,
            },
        )
        .expect("lockable"),
        Scheme::Sfll => locking::sfll::sfll_hd(
            &netlist::samples::ripple_adder(3),
            &locking::sfll::SfllConfig {
                key_bits: 4,
                hamming_distance: 1,
                seed: 5,
            },
        )
        .expect("lockable"),
    }
}

/// Runs one (scheme, attack) loop and applies the conformance rules.
///
/// Rules:
/// - `Sat` and `DoubleDip` must recover a key on every scheme here, and
///   that key must be *exactly* correct (their termination argument
///   guarantees it; anything else is an engine bug).
/// - `AppSat` and `HillClimbing` must return a key; it may be approximate.
/// - `Sensitization` may be inconclusive (WLL's interference graphs defeat
///   it by construction).
/// - Whenever a key is returned: if the exact miter calls it equivalent,
///   sampling must agree (a sampled mismatch on an exact-equivalent key
///   means the engines disagree about the circuit's function).
pub fn run_one(scheme: Scheme, attack: AttackKind) -> Result<LoopRow, String> {
    let locked = lock_for(scheme);
    let mut oracle = CombOracle::from_locked(&locked)
        .map_err(|e| format!("{scheme:?}: oracle construction failed: {e:?}"))?;
    // Every attack goes through the unified engine driver — the same
    // surface the serve layer and the bench binaries use — so this battery
    // also conforms the trait plumbing, not just the attack math.
    let engine: Box<dyn AttackEngine> = match attack {
        AttackKind::Sat => Box::new(sat::SatEngine::default()),
        AttackKind::AppSat => Box::new(appsat::AppSatEngine::default()),
        AttackKind::DoubleDip => Box::new(double_dip::DoubleDipEngine::default()),
        AttackKind::HillClimbing => Box::new(hill_climbing::HillClimbEngine::default()),
        AttackKind::Sensitization => Box::new(sensitization::SensitizationEngine::default()),
    };
    let outcome = engine::run(engine.as_ref(), &locked, &mut oracle, &mut AttackCtl::new());

    let exact_required = matches!(attack, AttackKind::Sat | AttackKind::DoubleDip);
    let recovery_required = !matches!(attack, AttackKind::Sensitization);

    let Some(key) = &outcome.key else {
        if recovery_required {
            return Err(format!(
                "{scheme:?} × {attack:?}: no key recovered ({:?})",
                outcome.failure
            ));
        }
        return Ok(LoopRow {
            scheme,
            attack,
            recovered: false,
            exact: None,
            sampled: None,
        });
    };
    if key.len() != locked.key_bits() {
        return Err(format!(
            "{scheme:?} × {attack:?}: key width {} != {}",
            key.len(),
            locked.key_bits()
        ));
    }

    let sampled = attacks::key_is_functionally_correct(&locked, key, 512)
        .map_err(|e| format!("sampled check failed: {e:?}"))?;
    let exact = verify::key_is_exactly_correct(&locked, key);

    if exact && !sampled {
        return Err(format!(
            "{scheme:?} × {attack:?}: exact miter says equivalent but sampling disagrees"
        ));
    }
    if exact_required && !exact {
        let cex = verify::key_exact_counterexample(&locked, key);
        return Err(format!(
            "{scheme:?} × {attack:?}: recovered key is not exactly correct \
             (counterexample {cex:?})"
        ));
    }
    Ok(LoopRow {
        scheme,
        attack,
        recovered: true,
        exact: Some(exact),
        sampled: Some(sampled),
    })
}

/// Runs every (scheme × attack) pair. Returns the full report, or the
/// first conformance violation.
pub fn attack_loop_battery() -> Result<Vec<LoopRow>, String> {
    let mut rows = Vec::new();
    for scheme in SCHEMES {
        for attack in ATTACKS {
            rows.push(run_one(scheme, attack)?);
        }
    }
    Ok(rows)
}
