//! Hermetic execution runtime: a std-only scoped thread pool with a
//! *deterministic* chunked `par_map`/`par_reduce` API.
//!
//! Every experiment in the paper's Tables I/II — fault-coverage ATPG runs,
//! Hamming-distance corruption sweeps, and the oracle-guided attack
//! evaluations — is embarrassingly parallel across patterns, faults, keys
//! and benchmark circuits. The workspace's hermetic-build policy (DESIGN.md
//! §5) forbids registry dependencies such as `rayon`, so this crate provides
//! the small execution layer the hot paths share:
//!
//! - [`Pool`]: a scoped thread pool whose worker count comes from the
//!   `ORAP_THREADS` environment variable (default:
//!   [`std::thread::available_parallelism`]).
//! - [`Pool::par_map`] / [`Pool::par_chunks`] / [`Pool::par_reduce`]:
//!   data-parallel primitives with **fixed chunk assignment**: chunk
//!   boundaries are a function of the input length only, never of the
//!   thread count, so results are bit-identical whether the pool runs 1, 2
//!   or 64 threads.
//! - [`PoolStats`]: lightweight per-stage observability counters (tasks
//!   run, busy/idle time, wall time), exported as JSON by the `orap-bench`
//!   harness next to every experiment's results.
//!
//! # Determinism contract
//!
//! `par_map` applies a pure function per element and collects results in
//! input order — identical output for any thread count by construction.
//! `par_reduce` folds each fixed chunk sequentially and then folds the
//! per-chunk results *in chunk order*, so even non-associative folds (e.g.
//! floating-point sums) give the same bits on every run and thread count.
//!
//! # Example
//!
//! ```
//! let pool = exec::Pool::with_threads(4);
//! let squares = pool.par_map("squares", &[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! let sum = pool.par_reduce("sum", &squares, 0u64, |_, &x| x, |a, b| a + b);
//! assert_eq!(sum, 30);
//! ```

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "ORAP_THREADS";

/// Number of chunks `par_reduce` splits its input into (a function of the
/// input length only — see [`reduce_chunk_size`]).
const REDUCE_CHUNKS: usize = 64;

/// The chunk size [`Pool::par_reduce`] uses for an input of `len` elements.
///
/// Depends on the input length only — never on the thread count — which is
/// what makes reduction results bit-identical across pool sizes.
pub fn reduce_chunk_size(len: usize) -> usize {
    len.div_ceil(REDUCE_CHUNKS).max(1)
}

/// Accumulated counters for one named stage (one `par_*` call site).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Stage label as passed to the `par_*` call.
    pub label: String,
    /// Number of `par_*` invocations recorded under this label.
    pub calls: u64,
    /// Work items (map elements, chunks, or reduce chunks) executed.
    pub tasks: u64,
    /// Wall-clock nanoseconds spent inside the `par_*` calls.
    pub wall_ns: u64,
    /// Sum over workers of nanoseconds spent executing tasks.
    pub busy_ns: u64,
    /// Sum over workers of nanoseconds spent waiting for work (scheduling
    /// overhead and end-of-stage imbalance — the "steal/idle" time).
    pub idle_ns: u64,
    /// Chunks executed by a worker beyond its fair share
    /// (`ceil(chunks/workers)`) in [`Pool::par_chunks_stealing`] calls —
    /// how much work-stealing actually rebalanced. Scheduling telemetry
    /// only; like `busy_ns`/`idle_ns` it may vary run to run.
    pub stolen: u64,
}

/// A snapshot of a pool's observability counters (see [`Pool::stats`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads the pool was configured with.
    pub threads: usize,
    /// Per-stage counters, in first-use order.
    pub stages: Vec<StageStats>,
}

impl PoolStats {
    /// Total tasks executed across all stages.
    pub fn total_tasks(&self) -> u64 {
        self.stages.iter().map(|s| s.tasks).sum()
    }

    /// Total wall-clock nanoseconds across all stages.
    pub fn total_wall_ns(&self) -> u64 {
        self.stages.iter().map(|s| s.wall_ns).sum()
    }
}

/// A scoped thread pool with deterministic data-parallel primitives.
///
/// The pool holds no persistent worker threads: each `par_*` call spawns
/// scoped workers (capped at the configured thread count) that pull index
/// ranges from a shared atomic cursor, so borrowed (non-`'static`) data can
/// be captured freely and a 1-thread pool degrades to an inline loop with
/// no spawn at all.
#[derive(Debug)]
pub struct Pool {
    threads: usize,
    stages: Mutex<Vec<StageStats>>,
}

/// Parses a thread-count override string (the `ORAP_THREADS` format):
/// a positive integer. `None`, empty, zero or garbage yield `None`.
fn parse_threads(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|s| s.trim().parse::<usize>().ok()).filter(|&n| n > 0)
}

/// The process-default thread count: `ORAP_THREADS` if set and valid,
/// otherwise [`std::thread::available_parallelism`] (1 if unknown).
pub fn default_threads() -> usize {
    parse_threads(std::env::var(THREADS_ENV).ok().as_deref()).unwrap_or_else(|| {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    })
}

/// The process-wide shared pool, created on first use with
/// [`default_threads`]. Hot paths that do not take an explicit pool
/// parameter run on this one.
pub fn global() -> &'static Pool {
    static GLOBAL: OnceLock<Pool> = OnceLock::new();
    GLOBAL.get_or_init(Pool::from_env)
}

impl Pool {
    /// Creates a pool honouring `ORAP_THREADS` (default: all available
    /// cores).
    pub fn from_env() -> Self {
        Self::with_threads(default_threads())
    }

    /// Creates a pool with exactly `threads` workers (minimum 1).
    pub fn with_threads(threads: usize) -> Self {
        Pool {
            threads: threads.max(1),
            stages: Mutex::new(Vec::new()),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Snapshots the observability counters accumulated so far.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            threads: self.threads,
            stages: self.stages.lock().expect("stats lock").clone(),
        }
    }

    /// Clears the accumulated counters (the thread count is kept).
    pub fn reset_stats(&self) {
        self.stages.lock().expect("stats lock").clear();
    }

    fn record(&self, label: &str, tasks: usize, wall: Duration, busy_ns: u64, idle_ns: u64) {
        self.record_full(label, tasks, wall, busy_ns, idle_ns, 0);
    }

    fn record_full(
        &self,
        label: &str,
        tasks: usize,
        wall: Duration,
        busy_ns: u64,
        idle_ns: u64,
        stolen: u64,
    ) {
        let mut stages = self.stages.lock().expect("stats lock");
        let idx = match stages.iter().position(|s| s.label == label) {
            Some(i) => i,
            None => {
                stages.push(StageStats {
                    label: label.to_string(),
                    ..StageStats::default()
                });
                stages.len() - 1
            }
        };
        let s = &mut stages[idx];
        s.calls += 1;
        s.tasks += tasks as u64;
        s.wall_ns += wall.as_nanos() as u64;
        s.busy_ns += busy_ns;
        s.idle_ns += idle_ns;
        s.stolen += stolen;
    }

    /// Runs `job(0..n)` across the pool, collecting results in index order.
    ///
    /// The scheduling granularity adapts to the worker count, but which
    /// worker runs which index never affects the output: slot `i` of the
    /// result always holds `job(i)`.
    fn run_indexed<R, F>(&self, label: &str, n: usize, job: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let call_start = Instant::now();
        let workers = self.threads.min(n);
        if workers <= 1 {
            let t = Instant::now();
            let out: Vec<R> = (0..n).map(&job).collect();
            let busy = t.elapsed().as_nanos() as u64;
            self.record(label, n, call_start.elapsed(), busy, 0);
            return out;
        }

        // Work distribution: an atomic cursor over index ranges. The grain
        // only controls contention, not results.
        let grain = (n / (workers * 4)).max(1);
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut busy_total = 0u64;
        let mut idle_total = 0u64;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let worker_start = Instant::now();
                        let mut busy = Duration::ZERO;
                        let mut local: Vec<(usize, R)> = Vec::new();
                        loop {
                            let start = next.fetch_add(grain, Ordering::Relaxed);
                            if start >= n {
                                break;
                            }
                            let end = (start + grain).min(n);
                            let t = Instant::now();
                            for i in start..end {
                                local.push((i, job(i)));
                            }
                            busy += t.elapsed();
                        }
                        (local, worker_start.elapsed(), busy)
                    })
                })
                .collect();
            for h in handles {
                let (local, wall, busy) = h.join().expect("exec worker panicked");
                busy_total += busy.as_nanos() as u64;
                idle_total += wall.saturating_sub(busy).as_nanos() as u64;
                for (i, r) in local {
                    slots[i] = Some(r);
                }
            }
        });
        self.record(label, n, call_start.elapsed(), busy_total, idle_total);
        slots
            .into_iter()
            .map(|r| r.expect("every index executed"))
            .collect()
    }

    /// Applies `f` to every element, returning results in input order.
    ///
    /// `f` receives `(index, &item)`; it must be a pure function of those
    /// for the determinism contract to hold. Counters accrue under `label`.
    pub fn par_map<T, R, F>(&self, label: &str, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.run_indexed(label, items.len(), |i| f(i, &items[i]))
    }

    /// Applies `f` to fixed slices of `chunk_size` consecutive elements
    /// (the last chunk may be shorter), returning per-chunk results in
    /// chunk order.
    ///
    /// Use this when a task needs per-chunk setup (cloning a simulator,
    /// seeding an RNG) amortized over many elements. Pick `chunk_size` from
    /// the *data* (e.g. [`reduce_chunk_size`]), never from the thread
    /// count, to keep results thread-count independent.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`.
    pub fn par_chunks<T, R, F>(&self, label: &str, items: &[T], chunk_size: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        assert!(chunk_size > 0, "chunk_size must be positive");
        let n = items.len().div_ceil(chunk_size);
        self.run_indexed(label, n, |k| {
            let start = k * chunk_size;
            let end = (start + chunk_size).min(items.len());
            f(k, &items[start..end])
        })
    }

    /// Applies `f` to *variable-width* chunks of `items` with per-worker
    /// reusable state, scheduling chunks by work-stealing.
    ///
    /// `ends` gives the exclusive end offset of each chunk in ascending
    /// order (the last entry must equal `items.len()`), so callers can cut
    /// the input by estimated cost instead of element count — the fault
    /// simulator sizes chunks by fanout-cone mass. Each worker calls `init`
    /// exactly once and reuses that state for every chunk it executes; this
    /// is where a per-worker simulator scratch is paid for once instead of
    /// per chunk.
    ///
    /// Determinism contract: chunk *boundaries* come from `ends` (data
    /// only), results are collected in chunk order, and `f` must be a pure
    /// function of `(chunk_index, slice)` modulo reusable-state scratch
    /// whose final value it does not leak into results. Which worker steals
    /// which chunk affects scheduling (and the [`StageStats::stolen`]
    /// counter) only, never the returned `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `ends` is not ascending or does not cover `items` exactly.
    pub fn par_chunks_stealing<T, S, R, I, F>(
        &self,
        label: &str,
        items: &[T],
        ends: &[usize],
        init: I,
        f: F,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(usize, &[T], &mut S) -> R + Sync,
    {
        let n = ends.len();
        let mut prev = 0usize;
        for &e in ends {
            assert!(e >= prev, "chunk ends must be ascending");
            prev = e;
        }
        assert_eq!(prev, items.len(), "chunk ends must cover all items");
        let slice_of = |k: usize| {
            let start = if k == 0 { 0 } else { ends[k - 1] };
            &items[start..ends[k]]
        };

        let call_start = Instant::now();
        let workers = self.threads.min(n);
        if workers <= 1 {
            let t = Instant::now();
            let mut state = init();
            let out: Vec<R> = (0..n).map(|k| f(k, slice_of(k), &mut state)).collect();
            let busy = t.elapsed().as_nanos() as u64;
            self.record_full(label, n, call_start.elapsed(), busy, 0, 0);
            return out;
        }

        // Steal granularity is one chunk: the atomic cursor IS the steal
        // queue (an idle worker taking the next chunk is the steal).
        let fair = n.div_ceil(workers) as u64;
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut busy_total = 0u64;
        let mut idle_total = 0u64;
        let mut stolen_total = 0u64;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let worker_start = Instant::now();
                        let mut busy = Duration::ZERO;
                        let mut state = init();
                        let mut local: Vec<(usize, R)> = Vec::new();
                        loop {
                            let k = next.fetch_add(1, Ordering::Relaxed);
                            if k >= n {
                                break;
                            }
                            let t = Instant::now();
                            local.push((k, f(k, slice_of(k), &mut state)));
                            busy += t.elapsed();
                        }
                        (local, worker_start.elapsed(), busy)
                    })
                })
                .collect();
            for h in handles {
                let (local, wall, busy) = h.join().expect("exec worker panicked");
                busy_total += busy.as_nanos() as u64;
                idle_total += wall.saturating_sub(busy).as_nanos() as u64;
                stolen_total += (local.len() as u64).saturating_sub(fair);
                for (i, r) in local {
                    slots[i] = Some(r);
                }
            }
        });
        self.record_full(
            label,
            n,
            call_start.elapsed(),
            busy_total,
            idle_total,
            stolen_total,
        );
        slots
            .into_iter()
            .map(|r| r.expect("every chunk executed"))
            .collect()
    }

    /// Maps every element with `map` and folds the results with `fold`.
    ///
    /// The input is split into [`reduce_chunk_size`]-sized chunks; each
    /// chunk is folded sequentially in element order, and the per-chunk
    /// results are then folded **in chunk order** starting from `identity`.
    /// Because the chunk boundaries depend only on `items.len()`, the
    /// result is bit-identical for every thread count — including
    /// non-associative folds such as floating-point addition. For an
    /// associative `fold` with a true identity, the result equals the
    /// sequential `items.iter().fold(...)`.
    pub fn par_reduce<T, A, M, F>(&self, label: &str, items: &[T], identity: A, map: M, fold: F) -> A
    where
        T: Sync,
        A: Send,
        M: Fn(usize, &T) -> A + Sync,
        F: Fn(A, A) -> A + Sync,
    {
        let chunk = reduce_chunk_size(items.len());
        let partials = self.par_chunks(label, items, chunk, |k, slice| {
            let base = k * chunk;
            let mut it = slice.iter().enumerate();
            let (j0, first) = it.next().expect("chunks are non-empty");
            let mut acc = map(base + j0, first);
            for (j, x) in it {
                acc = fold(acc, map(base + j, x));
            }
            acc
        });
        partials.into_iter().fold(identity, &fold)
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        for threads in [1, 2, 3, 8] {
            let pool = Pool::with_threads(threads);
            let items: Vec<u64> = (0..997).collect();
            let out = pool.par_map("t", &items, |i, &x| {
                assert_eq!(i as u64, x);
                x * 3 + 1
            });
            assert_eq!(out.len(), items.len());
            assert!(out.iter().enumerate().all(|(i, &y)| y == i as u64 * 3 + 1));
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let pool = Pool::with_threads(4);
        let empty: Vec<u32> = Vec::new();
        assert!(pool.par_map("e", &empty, |_, &x| x).is_empty());
        assert_eq!(pool.par_map("s", &[42u32], |_, &x| x + 1), vec![43]);
    }

    #[test]
    fn par_chunks_covers_every_element_once() {
        let pool = Pool::with_threads(4);
        let items: Vec<usize> = (0..103).collect();
        let chunks = pool.par_chunks("c", &items, 10, |k, slice| (k, slice.to_vec()));
        let flat: Vec<usize> = chunks.iter().flat_map(|(_, s)| s.iter().copied()).collect();
        assert_eq!(flat, items);
        assert_eq!(chunks.len(), 11);
        assert_eq!(chunks.last().unwrap().1.len(), 3);
    }

    #[test]
    fn par_reduce_matches_sequential_sum() {
        let items: Vec<u64> = (0..1500).map(|i| i * i + 7).collect();
        let expect: u64 = items.iter().sum();
        for threads in [1, 2, 8] {
            let pool = Pool::with_threads(threads);
            let got = pool.par_reduce("sum", &items, 0u64, |_, &x| x, |a, b| a + b);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_reduce_float_bits_identical_across_thread_counts() {
        // 0.1-style values make float addition order-sensitive; the chunked
        // fold must still give the same bits for every thread count.
        let items: Vec<f64> = (0..977).map(|i| (i as f64) * 0.1 + 0.3).collect();
        let reference = Pool::with_threads(1).par_reduce("f", &items, 0.0f64, |_, &x| x, |a, b| a + b);
        for threads in [2, 3, 8, 17] {
            let pool = Pool::with_threads(threads);
            let got = pool.par_reduce("f", &items, 0.0f64, |_, &x| x, |a, b| a + b);
            assert_eq!(got.to_bits(), reference.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn stats_accumulate_per_stage() {
        let pool = Pool::with_threads(2);
        let items: Vec<u32> = (0..100).collect();
        let _ = pool.par_map("stage_a", &items, |_, &x| x);
        let _ = pool.par_map("stage_a", &items, |_, &x| x);
        let _ = pool.par_reduce("stage_b", &items, 0u32, |_, &x| x, |a, b| a.wrapping_add(b));
        let stats = pool.stats();
        assert_eq!(stats.threads, 2);
        let a = stats.stages.iter().find(|s| s.label == "stage_a").unwrap();
        assert_eq!(a.calls, 2);
        assert_eq!(a.tasks, 200);
        let b = stats.stages.iter().find(|s| s.label == "stage_b").unwrap();
        assert_eq!(b.calls, 1);
        assert!(stats.total_tasks() >= 200);
        pool.reset_stats();
        assert!(pool.stats().stages.is_empty());
    }

    #[test]
    fn threads_env_parsing() {
        assert_eq!(parse_threads(None), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("nope")), None);
        assert_eq!(parse_threads(Some("8")), Some(8));
        assert_eq!(parse_threads(Some(" 3 ")), Some(3));
    }

    #[test]
    fn with_threads_floors_at_one() {
        assert_eq!(Pool::with_threads(0).threads(), 1);
        assert_eq!(Pool::with_threads(5).threads(), 5);
    }

    #[test]
    fn reduce_chunk_size_depends_on_len_only() {
        assert_eq!(reduce_chunk_size(0), 1);
        assert_eq!(reduce_chunk_size(1), 1);
        assert_eq!(reduce_chunk_size(64), 1);
        assert_eq!(reduce_chunk_size(65), 2);
        assert_eq!(reduce_chunk_size(6400), 100);
    }

    #[test]
    fn par_chunks_stealing_matches_sequential_for_any_thread_count() {
        // Uneven, cost-shaped chunk boundaries; per-worker state is a
        // scratch buffer whose reuse must not leak into results.
        let items: Vec<u64> = (0..513).map(|i| i * 31 + 5).collect();
        let ends = vec![1usize, 2, 50, 180, 181, 400, 513];
        let run = |threads: usize| {
            Pool::with_threads(threads).par_chunks_stealing(
                "steal",
                &items,
                &ends,
                Vec::<u64>::new,
                |k, slice, scratch| {
                    scratch.clear();
                    scratch.extend(slice.iter().map(|&x| x ^ k as u64));
                    scratch.iter().fold(0u64, |a, &x| a.wrapping_mul(3).wrapping_add(x))
                },
            )
        };
        let reference = run(1);
        assert_eq!(reference.len(), ends.len());
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), reference, "threads={threads}");
        }
    }

    #[test]
    fn par_chunks_stealing_inits_state_once_per_worker() {
        use std::sync::atomic::AtomicUsize;
        let items: Vec<u32> = (0..64).collect();
        let ends: Vec<usize> = (1..=64).collect();
        let inits = AtomicUsize::new(0);
        let pool = Pool::with_threads(4);
        let out = pool.par_chunks_stealing(
            "init_once",
            &items,
            &ends,
            || inits.fetch_add(1, Ordering::Relaxed),
            |_, slice, _| slice[0],
        );
        assert_eq!(out, items);
        // One init per spawned worker, never one per chunk.
        assert!(inits.load(Ordering::Relaxed) <= 4);
        let stats = pool.stats();
        let s = stats.stages.iter().find(|s| s.label == "init_once").unwrap();
        assert_eq!(s.tasks, 64);
    }

    #[test]
    fn par_chunks_stealing_empty_and_degenerate() {
        let pool = Pool::with_threads(4);
        let empty: Vec<u32> = Vec::new();
        let none: Vec<u32> =
            pool.par_chunks_stealing("e", &empty, &[], || (), |_, _, _| unreachable!());
        assert!(none.is_empty());
        // Empty chunks are legal (zero-cost entries in a cost plan).
        let out = pool.par_chunks_stealing(
            "z",
            &[7u32],
            &[0usize, 1, 1],
            || (),
            |_, slice, _| slice.len(),
        );
        assert_eq!(out, vec![0, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "cover all items")]
    fn par_chunks_stealing_rejects_short_plan() {
        Pool::with_threads(2).par_chunks_stealing("bad", &[1u8, 2, 3], &[1], || (), |_, _, _| ());
    }

    #[test]
    fn global_pool_is_shared() {
        let a = global() as *const Pool;
        let b = global() as *const Pool;
        assert_eq!(a, b);
        assert!(global().threads() >= 1);
    }
}
