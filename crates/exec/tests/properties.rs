//! Property-based tests (qcheck): the deterministic chunked parallel
//! primitives agree with their sequential counterparts on random inputs.

use exec::Pool;
use qcheck::{any_u64, vec_of};

qcheck::props! {
    config = qcheck::Config::with_cases(48);

    /// Chunked parallel reduce equals the sequential fold for any input
    /// and any thread count (wrapping-add is associative, so the chunked
    /// fold must coincide exactly with the element-order fold).
    fn par_reduce_equals_sequential_fold(
        items in vec_of(any_u64(), 0..400),
        threads in 1usize..9,
    ) {
        let pool = Pool::with_threads(threads);
        let expect = items.iter().fold(0u64, |a, &x| a.wrapping_add(x));
        let got = pool.par_reduce(
            "prop_sum",
            &items,
            0u64,
            |_, &x| x,
            |a, b| a.wrapping_add(b),
        );
        qcheck::prop_assert_eq!(got, expect);
    }

    /// `par_map` output equals the sequential map in order, for any thread
    /// count.
    fn par_map_equals_sequential_map(
        items in vec_of(any_u64(), 0..300),
        threads in 1usize..9,
    ) {
        let pool = Pool::with_threads(threads);
        let expect: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| x.rotate_left((i % 64) as u32) ^ 0x9E37_79B9)
            .collect();
        let got = pool.par_map("prop_map", &items, |i, &x| {
            x.rotate_left((i % 64) as u32) ^ 0x9E37_79B9
        });
        qcheck::prop_assert_eq!(got, expect);
    }

    /// `par_chunks` partitions the input exactly: concatenating the chunk
    /// slices in chunk order reproduces the input.
    fn par_chunks_partition_input(
        items in vec_of(any_u64(), 0..300),
        chunk in 1usize..50,
        threads in 1usize..9,
    ) {
        let pool = Pool::with_threads(threads);
        let chunks = pool.par_chunks("prop_chunks", &items, chunk, |_, s| s.to_vec());
        let flat: Vec<u64> = chunks.into_iter().flatten().collect();
        qcheck::prop_assert_eq!(flat, items);
    }
}
