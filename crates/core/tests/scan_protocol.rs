//! Scan-interface protocol conformance: the OraP invariant is that every
//! 0→1 `scan_enable` transition clears the key register *before* anything
//! shifts, so no scan-out sequence ever carries key bits — while functional
//! clocking (no edge) leaves the unlocked key untouched.

use orap::chip::{ChainCell, ProtectedChip};
use orap::threat::extract_key_via_scan;
use orap::{protect, OrapConfig, OrapProtected, OrapVariant};

fn protected(variant: OrapVariant) -> OrapProtected {
    let design = netlist::samples::counter(10);
    protect(
        &design,
        &locking::weighted::WllConfig {
            key_bits: 8,
            control_width: 3,
            seed: 7,
        },
        &OrapConfig {
            variant,
            ..OrapConfig::default()
        },
    )
    .expect("protect")
}

fn zero_pis(chip: &ProtectedChip) -> Vec<bool> {
    vec![false; chip.num_primary_inputs()]
}

fn zero_scan(chip: &ProtectedChip) -> Vec<bool> {
    vec![false; chip.num_scan_chains()]
}

/// The first clock after a 0→1 `scan_enable` edge clears the key register,
/// and the clear precedes the shift: even that first cycle's scan-out
/// carries no key bit.
#[test]
fn key_register_clears_on_rising_scan_enable_edge() {
    for variant in [OrapVariant::Basic, OrapVariant::Modified] {
        let p = protected(variant);
        let mut chip = ProtectedChip::new(&p).expect("chip");
        chip.power_on_and_unlock();
        assert!(chip.key_register_holds_correct_key(), "{variant:?} unlocks");

        // Zero the state flip-flops so shifting cannot move stale state
        // bits into the key cells — any surviving `true` after the edge
        // would then have to be a key bit that escaped the clear.
        chip.set_state_ffs(&vec![false; chip.num_state_ffs()]);
        chip.set_scan_enable(true);
        let pis = zero_pis(&chip);
        let scan_in = zero_scan(&chip);
        let out = chip.clock(&pis, &scan_in);
        assert!(
            chip.key_register_state().iter().all(|&b| !b),
            "{variant:?}: key register must be all zeros after the rising edge"
        );
        assert!(!chip.key_register_holds_correct_key());
        // The clear precedes the shift: even the very first scan-out cycle
        // after the edge carries no key bit.
        assert!(
            out.scan_out.iter().all(|&b| !b),
            "{variant:?}: first post-edge scan-out must not carry key bits"
        );
    }
}

/// Functional clocking never clears the key: `scan_enable` stays low, so
/// there is no edge and the pulse generators stay quiet.
#[test]
fn functional_clocks_preserve_the_unlocked_key() {
    let p = protected(OrapVariant::Basic);
    let mut chip = ProtectedChip::new(&p).expect("chip");
    chip.power_on_and_unlock();
    let pis = zero_pis(&chip);
    let scan_in = zero_scan(&chip);
    for _ in 0..24 {
        chip.clock(&pis, &scan_in);
        assert!(
            chip.key_register_holds_correct_key(),
            "functional-mode cycles must not touch the key register"
        );
    }
}

/// The self-clear fires on *every* rising edge, not just the first:
/// re-unlock, toggle, re-unlock again, across repeated rounds — and while
/// `scan_enable` stays high, further scan cycles keep the register cleared.
#[test]
fn every_rising_edge_clears_again() {
    let p = protected(OrapVariant::Basic);
    let mut chip = ProtectedChip::new(&p).expect("chip");
    let pis = zero_pis(&chip);
    let scan_in = zero_scan(&chip);
    for round in 0..4 {
        chip.set_scan_enable(false);
        chip.power_on_and_unlock();
        assert!(
            chip.key_register_holds_correct_key(),
            "round {round}: unlock must restore the key"
        );
        chip.set_state_ffs(&vec![false; chip.num_state_ffs()]);
        chip.set_scan_enable(true);
        for cycle in 0..3 {
            chip.clock(&pis, &scan_in);
            assert!(
                chip.key_register_state().iter().all(|&b| !b),
                "round {round}, scan cycle {cycle}: register must stay cleared"
            );
        }
    }
}

/// No scan-out sequence exposes the key after unlocking: shifting the whole
/// chain image out of an honest unlocked chip recovers only zeros in the
/// key-cell positions, on both scheme variants.
#[test]
fn no_scan_out_sequence_exposes_the_key() {
    for variant in [OrapVariant::Basic, OrapVariant::Modified] {
        let p = protected(variant);
        let mut chip = ProtectedChip::new(&p).expect("chip");
        assert!(
            chip.image_layout()
                .iter()
                .any(|c| matches!(c, ChainCell::Key(_))),
            "key cells must sit in the scan chains for the test to mean anything"
        );
        let leaked = extract_key_via_scan(&mut chip);
        assert_ne!(
            leaked, p.locked.correct_key,
            "{variant:?}: scan-out must not reproduce the key"
        );
        assert!(
            leaked.iter().all(|&b| !b),
            "{variant:?}: key cells scan out as zeros"
        );
    }
}
