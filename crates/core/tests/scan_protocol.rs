//! Scan-interface protocol conformance: the OraP invariant is that every
//! 0→1 `scan_enable` transition clears the key register *before* anything
//! shifts, so no scan-out sequence ever carries key bits — while functional
//! clocking (no edge) leaves the unlocked key untouched. The final group
//! drives the *dynamically keyed* scan chain (`locking::scan_obfuscation`)
//! with attack-style sequences and checks the key-schedule protocol: only
//! shift cycles advance the keystream, captures never do.

use locking::scan_obfuscation::{self, ObfScanSim, ScanObfConfig};
use netlist::rng::SplitMix64;
use orap::chip::{ChainCell, ProtectedChip};
use orap::threat::extract_key_via_scan;
use orap::{protect, OrapConfig, OrapProtected, OrapVariant};

fn protected(variant: OrapVariant) -> OrapProtected {
    let design = netlist::samples::counter(10);
    protect(
        &design,
        &locking::weighted::WllConfig {
            key_bits: 8,
            control_width: 3,
            seed: 7,
        },
        &OrapConfig {
            variant,
            ..OrapConfig::default()
        },
    )
    .expect("protect")
}

fn zero_pis(chip: &ProtectedChip) -> Vec<bool> {
    vec![false; chip.num_primary_inputs()]
}

fn zero_scan(chip: &ProtectedChip) -> Vec<bool> {
    vec![false; chip.num_scan_chains()]
}

/// The first clock after a 0→1 `scan_enable` edge clears the key register,
/// and the clear precedes the shift: even that first cycle's scan-out
/// carries no key bit.
#[test]
fn key_register_clears_on_rising_scan_enable_edge() {
    for variant in [OrapVariant::Basic, OrapVariant::Modified] {
        let p = protected(variant);
        let mut chip = ProtectedChip::new(&p).expect("chip");
        chip.power_on_and_unlock();
        assert!(chip.key_register_holds_correct_key(), "{variant:?} unlocks");

        // Zero the state flip-flops so shifting cannot move stale state
        // bits into the key cells — any surviving `true` after the edge
        // would then have to be a key bit that escaped the clear.
        chip.set_state_ffs(&vec![false; chip.num_state_ffs()]);
        chip.set_scan_enable(true);
        let pis = zero_pis(&chip);
        let scan_in = zero_scan(&chip);
        let out = chip.clock(&pis, &scan_in);
        assert!(
            chip.key_register_state().iter().all(|&b| !b),
            "{variant:?}: key register must be all zeros after the rising edge"
        );
        assert!(!chip.key_register_holds_correct_key());
        // The clear precedes the shift: even the very first scan-out cycle
        // after the edge carries no key bit.
        assert!(
            out.scan_out.iter().all(|&b| !b),
            "{variant:?}: first post-edge scan-out must not carry key bits"
        );
    }
}

/// Functional clocking never clears the key: `scan_enable` stays low, so
/// there is no edge and the pulse generators stay quiet.
#[test]
fn functional_clocks_preserve_the_unlocked_key() {
    let p = protected(OrapVariant::Basic);
    let mut chip = ProtectedChip::new(&p).expect("chip");
    chip.power_on_and_unlock();
    let pis = zero_pis(&chip);
    let scan_in = zero_scan(&chip);
    for _ in 0..24 {
        chip.clock(&pis, &scan_in);
        assert!(
            chip.key_register_holds_correct_key(),
            "functional-mode cycles must not touch the key register"
        );
    }
}

/// The self-clear fires on *every* rising edge, not just the first:
/// re-unlock, toggle, re-unlock again, across repeated rounds — and while
/// `scan_enable` stays high, further scan cycles keep the register cleared.
#[test]
fn every_rising_edge_clears_again() {
    let p = protected(OrapVariant::Basic);
    let mut chip = ProtectedChip::new(&p).expect("chip");
    let pis = zero_pis(&chip);
    let scan_in = zero_scan(&chip);
    for round in 0..4 {
        chip.set_scan_enable(false);
        chip.power_on_and_unlock();
        assert!(
            chip.key_register_holds_correct_key(),
            "round {round}: unlock must restore the key"
        );
        chip.set_state_ffs(&vec![false; chip.num_state_ffs()]);
        chip.set_scan_enable(true);
        for cycle in 0..3 {
            chip.clock(&pis, &scan_in);
            assert!(
                chip.key_register_state().iter().all(|&b| !b),
                "round {round}, scan cycle {cycle}: register must stay cleared"
            );
        }
    }
}

/// No scan-out sequence exposes the key after unlocking: shifting the whole
/// chain image out of an honest unlocked chip recovers only zeros in the
/// key-cell positions, on both scheme variants.
#[test]
fn no_scan_out_sequence_exposes_the_key() {
    for variant in [OrapVariant::Basic, OrapVariant::Modified] {
        let p = protected(variant);
        let mut chip = ProtectedChip::new(&p).expect("chip");
        assert!(
            chip.image_layout()
                .iter()
                .any(|c| matches!(c, ChainCell::Key(_))),
            "key cells must sit in the scan chains for the test to mean anything"
        );
        let leaked = extract_key_via_scan(&mut chip);
        assert_ne!(
            leaked, p.locked.correct_key,
            "{variant:?}: scan-out must not reproduce the key"
        );
        assert!(
            leaked.iter().all(|&b| !b),
            "{variant:?}: key cells scan out as zeros"
        );
    }
}

/// An adversary toggling `scan_enable` arbitrarily mid-shift never sees a
/// key bit: once the first rising edge fires, the register never holds the
/// correct key again (functional cycles in between do not restore it), and
/// with the functional state zeroed ahead of each rising edge — so the only
/// possible source of a nonzero chain bit would be a key bit that escaped
/// the clear — every scan cycle observes an all-zero register and an
/// all-zero scan-out. A clean re-unlock afterwards still works.
#[test]
fn adversarial_mid_shift_toggling_never_exposes_the_key() {
    for (vi, variant) in [OrapVariant::Basic, OrapVariant::Modified].into_iter().enumerate() {
        let p = protected(variant);
        let mut chip = ProtectedChip::new(&p).expect("chip");
        chip.power_on_and_unlock();
        chip.set_state_ffs(&vec![false; chip.num_state_ffs()]);
        let pis = zero_pis(&chip);
        let scan_in = zero_scan(&chip);

        let mut rng = SplitMix64::new(0xAD5E ^ vi as u64);
        let mut edge_seen = false;
        let mut prev_enable = false;
        for cycle in 0..64 {
            // Bias toward toggling: the attack is the edge pattern itself.
            let enable = rng.chance(2, 3);
            if enable && !prev_enable {
                // Functional cycles advance the counter; shifting would then
                // move those legitimate state bits into key-cell positions.
                // Zero the state at each rising edge so any nonzero bit seen
                // during the following scan burst is attributable only to a
                // key bit that escaped the self-clear.
                chip.set_state_ffs(&vec![false; chip.num_state_ffs()]);
                edge_seen = true;
            }
            prev_enable = enable;
            chip.set_scan_enable(enable);
            let out = chip.clock(&pis, &scan_in);
            if enable {
                assert!(
                    chip.key_register_state().iter().all(|&b| !b),
                    "{variant:?} cycle {cycle}: scan cycle with a non-zero key register"
                );
                assert!(
                    out.scan_out.iter().all(|&b| !b),
                    "{variant:?} cycle {cycle}: scan-out carried a nonzero bit"
                );
            }
            if edge_seen {
                assert!(
                    !chip.key_register_holds_correct_key(),
                    "{variant:?} cycle {cycle}: key reappeared without an unlock sequence"
                );
            }
        }
        assert!(edge_seen, "schedule must have exercised at least one edge");

        // The self-clear is not destructive: a fresh unlock still works.
        chip.set_scan_enable(false);
        chip.power_on_and_unlock();
        assert!(
            chip.key_register_holds_correct_key(),
            "{variant:?}: re-unlock after the adversarial schedule"
        );
    }
}

/// The dynamically keyed scan chain for the attack-facing tests below:
/// counter(8) under the scancheck battery profile (two chains of four
/// cells, invert and swap stages, 8-bit LFSR).
fn dyn_chain() -> scan_obfuscation::ScanObfLocked {
    scan_obfuscation::lock(
        &netlist::samples::counter(8),
        &ScanObfConfig {
            key_bits: 8,
            num_chains: 2,
            invert_spacing: 2,
            swap_spacing: 2,
            seed: 3,
        },
    )
    .expect("counter(8) is lockable")
}

/// Key-schedule protocol of the dynamically keyed chain: the keystream
/// advances on shift cycles ONLY. An adversary interleaving capture cycles
/// mid-shift (scan-enable toggling) observes exactly the keyed-shift
/// behaviour of an uninterrupted shift burst — captures neither advance nor
/// reset the schedule.
#[test]
fn capture_cycles_never_advance_the_dynamic_key_schedule() {
    let locked = dyn_chain();
    let mut rng = SplitMix64::new(0x70661e);
    let key: Vec<bool> = locked.correct_key.clone();
    let pis = vec![false; 1];

    let mut straight = ObfScanSim::new(&locked, &key).expect("chip model");
    let mut toggled = ObfScanSim::new(&locked, &key).expect("chip model");
    for shift in 0..12 {
        let bits: Vec<bool> = (0..2).map(|_| rng.bool()).collect();
        straight.shift_clock(&bits);
        // The adversary sneaks 1–3 capture cycles between shifts.
        for _ in 0..1 + rng.below_usize(3) {
            toggled.capture(&pis);
        }
        toggled.shift_clock(&bits);
        assert_eq!(
            straight.keystream(),
            toggled.keystream(),
            "shift {shift}: captures moved the key schedule"
        );
    }
    // And a reset rewinds the schedule to the seed, for both histories.
    straight.reset();
    toggled.reset();
    assert_eq!(straight.keystream(), key);
    assert_eq!(toggled.keystream(), key);
}

/// Attack-driven sequences against the dynamically keyed chain: sessions
/// are deterministic per (seed, stimulus) — the property DynUnlock's oracle
/// model relies on — while a wrong seed scrambles the observed stream, and
/// the keyed image differs from the plain shift image (the obfuscation is
/// actually on the wire).
#[test]
fn replayed_sessions_are_deterministic_and_seed_dependent() {
    let locked = dyn_chain();
    let mut rng = SplitMix64::new(0xD1A6);
    let stream: Vec<bool> = (0..8).map(|_| rng.bool()).collect();
    let pis = vec![true];

    let mut chip = ObfScanSim::new(&locked, &locked.correct_key).expect("chip model");
    let first = chip.session(4, 4, &stream, &pis);
    let replay = chip.session(4, 4, &stream, &pis);
    assert_eq!(first, replay, "same seed + stimulus must replay identically");

    let mut wrong_key = locked.correct_key.clone();
    wrong_key[0] = !wrong_key[0];
    let mut wrong = ObfScanSim::new(&locked, &wrong_key).expect("chip model");
    assert_ne!(
        first,
        wrong.session(4, 4, &stream, &pis),
        "a flipped seed bit must scramble the session"
    );

    // The keyed shift image differs from a plain (unkeyed) shift of the
    // same stimulus: zero state + zero scan-in shifts to zero in a plain
    // chain, but the invert stages put keystream-controlled ones on the wire.
    chip.reset();
    let mut all_zero = true;
    for _ in 0..4 {
        all_zero &= chip.shift_clock(&[false, false]).iter().all(|&b| !b);
    }
    assert!(
        !(all_zero && chip.state().iter().all(|&b| !b)),
        "keyed shifting of zeros must not look like a plain chain"
    );
}
