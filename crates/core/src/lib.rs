//! OraP — oracle-protection logic locking (Kalligeros, Karousos, Karybali,
//! DATE 2020).
//!
//! Conventional defences against oracle-guided attacks harden the *netlist*;
//! OraP removes the attacker's oracle instead. The key register is an LFSR
//! whose cells carry per-cell pulse generators that self-clear the register
//! on every 0→1 transition of `scan_enable` — before the first scan shift —
//! so a chip is *always locked while it is scannable*:
//!
//! - unlocking is a multi-cycle process: the tamper-proof memory feeds a
//!   *key sequence* (seeds, with free-run gaps) into the LFSR's reseeding
//!   points; the final LFSR state is the real key ([`scheme`], Fig. 1);
//! - the *modified* scheme (Fig. 3) drives half of the reseeding points from
//!   ordinary circuit flip-flops, making the (locked, wrong) responses
//!   produced during unlocking *necessary* for key generation — which
//!   defeats the flip-flop-freezing Trojan of threat (e);
//! - because no oracle-based attack can run, OraP pairs with a
//!   high-corruptibility scheme (weighted logic locking) instead of a
//!   SAT-resistant point function.
//!
//! Crate layout:
//!
//! - [`scheme`]: [`OrapConfig`] / [`protect`] — build an OraP-protected
//!   design from any netlist (WLL + LFSR + key-sequence solving over GF(2)),
//! - [`chip`]: [`chip::ProtectedChip`] — the cycle-accurate fabricated-chip model
//!   (scan chains containing the LFSR cells, pulse generators, unlock
//!   controller) and [`chip::ProtectedChipOracle`], the [`attacks::Oracle`] view
//!   of such a chip,
//! - [`threat`]: executable models of the paper's threat scenarios (a)–(e)
//!   with Trojan payload-cost accounting and the side-channel detection
//!   model the countermeasures appeal to.
//!
//! # Example
//!
//! ```
//! use orap::{protect, OrapConfig, OrapVariant};
//! use orap::chip::ProtectedChip;
//!
//! # fn main() -> Result<(), orap::OrapError> {
//! let design = netlist::samples::counter(8);
//! let protected = protect(
//!     &design,
//!     &locking::weighted::WllConfig { key_bits: 12, control_width: 3, seed: 7 },
//!     &OrapConfig { variant: OrapVariant::Basic, ..OrapConfig::default() },
//! )?;
//! let mut chip = ProtectedChip::new(&protected)?;
//! chip.power_on_and_unlock();
//! assert!(chip.key_register_holds_correct_key());
//! // The instant scan mode is entered, the key register self-clears.
//! chip.set_scan_enable(true);
//! chip.clock(&[false], &vec![false; chip.num_scan_chains()]);
//! assert!(!chip.key_register_holds_correct_key());
//! # Ok(())
//! # }
//! ```

pub mod chip;
pub mod scheme;
pub mod threat;

pub use scheme::{protect, OrapConfig, OrapError, OrapProtected, OrapVariant, UnlockStimulus};
