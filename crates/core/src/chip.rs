//! Cycle-accurate model of a fabricated OraP-protected chip.
//!
//! The model exposes exactly the interface an attacker (or tester) has:
//! primary input pins, primary output pins, `scan_enable`, per-chain scan-in
//! and scan-out pins, and the clock. Internally it carries the locked
//! combinational part, the design's state flip-flops, the key-register LFSR
//! with one pulse generator per cell, the scan chains — which, per the
//! paper's design guideline, contain the LFSR cells *interleaved before*
//! ordinary flip-flops — and the unlock controller that plays the key
//! sequence from the tamper-proof memory.
//!
//! The Trojan switches of [`crate::threat`] act on this model; with all
//! switches off the chip is honest and, as the paper argues, never yields a
//! correct response through scan.

use gatesim::CombSim;
use lfsr::{Lfsr, PulseGenerator};
use netlist::{Error, NetId};

use crate::scheme::{OrapProtected, OrapVariant};

/// One position in a scan chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChainCell {
    /// An ordinary design flip-flop (index into the design's DFF list).
    State(usize),
    /// A key-register LFSR cell.
    Key(usize),
}

/// Result of one clock cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClockResult {
    /// Primary output values observed during the cycle.
    pub outputs: Vec<bool>,
    /// Scan-out bit per chain (the last cell's value before the shift).
    pub scan_out: Vec<bool>,
}

/// Trojan switches an untrusted foundry might have implanted. All off in an
/// honest chip; the cost of turning each on is quantified in
/// [`crate::threat`].
#[derive(Debug, Clone, Default)]
pub struct TrojanState {
    /// Threat (a): per-cell pulse-generator suppression (reset never fires
    /// for cells marked `true`).
    pub suppress_reset: Vec<bool>,
    /// Threat (b): the LFSR ignores `scan_enable` entirely — cells neither
    /// reset nor shift — and bypass muxes stitch the chains around them.
    pub hold_and_bypass_lfsr: bool,
    /// Threat (c): a shadow register captures the key when unlocking
    /// completes and drives the key gates during test mode.
    pub shadow_register: bool,
    /// Threat (e): state flip-flops ignore updates while the unlock
    /// controller runs (their reset/enable is suppressed).
    pub freeze_state_ffs: bool,
}

/// The fabricated chip.
#[derive(Debug, Clone)]
pub struct ProtectedChip {
    design: OrapProtected,
    comb: CombSim,
    /// Positions of (original PIs, state FF outputs, key inputs) within the
    /// locked circuit's comb-input list.
    pi_pos: Vec<usize>,
    state_pos: Vec<usize>,
    key_pos: Vec<usize>,
    num_pos_outputs: usize,

    state: Vec<bool>,
    key_reg: Lfsr,
    pulses: Vec<PulseGenerator>,
    chains: Vec<Vec<ChainCell>>,
    scan_enable: bool,
    shadow: Option<Vec<bool>>,
    unlocking: bool,
    pub(crate) trojan: TrojanState,
}

impl ProtectedChip {
    /// Builds the chip model from a protected design.
    ///
    /// # Errors
    ///
    /// Returns a netlist error if the locked circuit is cyclic.
    pub fn new(design: &OrapProtected) -> Result<Self, Error> {
        let c = &design.locked.circuit;
        let comb = CombSim::new(c)?;
        let key_nets: Vec<NetId> = design.locked.key_inputs.clone();
        // comb inputs = PIs (incl. key inputs, which were added as PIs) then
        // FF outputs. Classify each position.
        let mut pi_pos = Vec::new();
        let mut key_pos = vec![usize::MAX; key_nets.len()];
        let mut state_pos = Vec::new();
        let dff_qs: Vec<NetId> = c.dffs().iter().map(|d| d.q).collect();
        for (i, n) in comb.inputs().iter().enumerate() {
            if let Some(k) = key_nets.iter().position(|kn| kn == n) {
                key_pos[k] = i;
            } else if dff_qs.contains(n) {
                state_pos.push(i);
            } else {
                pi_pos.push(i);
            }
        }
        assert!(key_pos.iter().all(|&p| p != usize::MAX), "key inputs found");

        let num_ffs = c.dffs().len();
        let width = design.key_bits();
        let chains = build_chains(num_ffs, width, design.scan_chains);
        Ok(ProtectedChip {
            comb,
            pi_pos,
            state_pos,
            key_pos,
            num_pos_outputs: c.primary_outputs().len(),
            state: vec![false; num_ffs],
            key_reg: Lfsr::new(design.lfsr.clone()),
            pulses: vec![PulseGenerator::new(); width],
            chains,
            scan_enable: false,
            shadow: None,
            unlocking: false,
            trojan: TrojanState {
                suppress_reset: vec![false; width],
                ..TrojanState::default()
            },
            design: design.clone(),
        })
    }

    /// The protected design this chip implements.
    pub fn design(&self) -> &OrapProtected {
        &self.design
    }

    /// Number of primary input pins (excluding key/scan pins).
    pub fn num_primary_inputs(&self) -> usize {
        self.pi_pos.len()
    }

    /// Number of primary output pins.
    pub fn num_primary_outputs(&self) -> usize {
        self.num_pos_outputs
    }

    /// Number of design flip-flops.
    pub fn num_state_ffs(&self) -> usize {
        self.state.len()
    }

    /// Number of scan chains.
    pub fn num_scan_chains(&self) -> usize {
        self.chains.len()
    }

    /// The scan-chain layout (LFSR cells interleaved before state FFs).
    pub fn chains(&self) -> &[Vec<ChainCell>] {
        &self.chains
    }

    /// Drives the `scan_enable` pin.
    pub fn set_scan_enable(&mut self, value: bool) {
        self.scan_enable = value;
    }

    /// Current `scan_enable` value.
    pub fn scan_enable(&self) -> bool {
        self.scan_enable
    }

    /// White-box test helper: does the key register hold the correct key?
    pub fn key_register_holds_correct_key(&self) -> bool {
        self.key_reg.state() == self.design.locked.correct_key
    }

    /// White-box test helper: raw key-register state.
    pub fn key_register_state(&self) -> Vec<bool> {
        self.key_reg.state()
    }

    /// White-box test helper: design flip-flop values.
    pub fn state_ffs(&self) -> &[bool] {
        &self.state
    }

    /// White-box test helper: overwrite flip-flop values.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn set_state_ffs(&mut self, state: &[bool]) {
        assert_eq!(state.len(), self.state.len(), "state width mismatch");
        self.state.copy_from_slice(state);
    }

    /// Arms the threat-(a) reset-suppression Trojan for a single key-register
    /// cell. [`crate::threat::arm`] suppresses every cell; partial
    /// suppression lets experiments show that half a Trojan gains nothing.
    pub fn trojan_suppress_cell(&mut self, cell: usize) {
        if let Some(b) = self.trojan.suppress_reset.get_mut(cell) {
            *b = true;
        }
    }

    /// The value the key gates actually see: the key register, or — when
    /// the threat-(c) shadow Trojan is active and armed — the shadow copy.
    /// (The shadow mux keeps the chip's functional behaviour intact, which
    /// the paper's threat model requires of any implanted Trojan.)
    fn effective_key(&self, key_state: &[bool]) -> Vec<bool> {
        if self.trojan.shadow_register {
            if let Some(s) = &self.shadow {
                return s.clone();
            }
        }
        key_state.to_vec()
    }

    fn comb_eval(&self, pis: &[bool], key: &[bool]) -> (Vec<bool>, Vec<bool>) {
        assert_eq!(pis.len(), self.pi_pos.len(), "primary input width mismatch");
        let mut input = vec![false; self.comb.inputs().len()];
        for (&p, &b) in self.pi_pos.iter().zip(pis) {
            input[p] = b;
        }
        for (&p, &b) in self.state_pos.iter().zip(&self.state) {
            input[p] = b;
        }
        for (&p, &b) in self.key_pos.iter().zip(key) {
            input[p] = b;
        }
        let words: Vec<u64> = input.iter().map(|&b| if b { !0 } else { 0 }).collect();
        let out = self.comb.eval_words(&words);
        let bits: Vec<bool> = out.into_iter().map(|w| w & 1 == 1).collect();
        let pos = bits[..self.num_pos_outputs].to_vec();
        let next_state = bits[self.num_pos_outputs..].to_vec();
        (pos, next_state)
    }

    /// Applies one clock cycle.
    ///
    /// Pulse generators sample `scan_enable` first: on a 0→1 transition each
    /// unsuppressed cell of the key register clears *before* anything
    /// shifts — the OraP invariant.
    ///
    /// In scan mode (`scan_enable` high) the chains shift by one position
    /// (one scan-in bit per chain); in functional mode the combinational
    /// part evaluates with the current key-register state and the state
    /// flip-flops latch.
    ///
    /// # Panics
    ///
    /// Panics on pin-width mismatches.
    pub fn clock(&mut self, pis: &[bool], scan_in: &[bool]) -> ClockResult {
        // 1. Pulse generators (per cell).
        let mut key_state = self.key_reg.state();
        if !self.trojan.hold_and_bypass_lfsr {
            for (i, pg) in self.pulses.iter_mut().enumerate() {
                let mut fired = pg.clock(self.scan_enable);
                if self.trojan.suppress_reset.get(i).copied().unwrap_or(false) {
                    fired = false;
                }
                if fired {
                    key_state[i] = false;
                }
            }
        }

        // 2. Scan-out values (pre-shift last-cell values).
        let scan_out: Vec<bool> = self
            .chains
            .iter()
            .map(|chain| {
                chain
                    .iter()
                    .rev()
                    .find(|cell| self.cell_visible_in_chain(cell))
                    .map(|cell| self.read_cell(cell, &key_state))
                    .unwrap_or(false)
            })
            .collect();

        if self.scan_enable {
            assert_eq!(
                scan_in.len(),
                self.chains.len(),
                "one scan-in bit per chain"
            );
            // 3a. Shift every chain by one position (skipping bypassed key
            // cells under the threat-(b) Trojan).
            let chains = self.chains.clone();
            for (ci, chain) in chains.iter().enumerate() {
                let cells: Vec<&ChainCell> = chain
                    .iter()
                    .filter(|c| self.cell_visible_in_chain(c))
                    .collect();
                // Shift from tail to head.
                for w in (1..cells.len()).rev() {
                    let v = self.read_cell(cells[w - 1], &key_state);
                    self.write_cell(cells[w], v, &mut key_state);
                }
                if let Some(first) = cells.first() {
                    self.write_cell(first, scan_in[ci], &mut key_state);
                }
            }
            let key = self.effective_key(&key_state);
            let (outputs, _) = self.comb_eval(pis, &key);
            self.key_reg.load(&key_state);
            ClockResult { outputs, scan_out }
        } else {
            // 3b. Functional cycle.
            let key = self.effective_key(&key_state);
            let (outputs, next_state) = self.comb_eval(pis, &key);
            let freeze = self.trojan.freeze_state_ffs && self.unlocking;
            if !freeze {
                self.state = next_state;
            }
            self.key_reg.load(&key_state);
            ClockResult { outputs, scan_out }
        }
    }

    fn cell_visible_in_chain(&self, cell: &ChainCell) -> bool {
        match cell {
            ChainCell::State(_) => true,
            ChainCell::Key(_) => !self.trojan.hold_and_bypass_lfsr,
        }
    }

    fn read_cell(&self, cell: &ChainCell, key_state: &[bool]) -> bool {
        match cell {
            ChainCell::State(i) => self.state[*i],
            ChainCell::Key(i) => key_state[*i],
        }
    }

    fn write_cell(&mut self, cell: &ChainCell, value: bool, key_state: &mut [bool]) {
        match cell {
            ChainCell::State(i) => self.state[*i] = value,
            ChainCell::Key(i) => key_state[*i] = value,
        }
    }

    /// Power-on flow of a legitimate owner: reset the key register (the
    /// logic-locking controller pulses `scan_enable` once, as the paper
    /// describes), then play the key sequence from the tamper-proof memory.
    /// After this the chip computes with the correct key — unless a Trojan
    /// interfered.
    pub fn power_on_and_unlock(&mut self) {
        // Controller-produced scan_enable pulse to clear the key register.
        self.set_scan_enable(true);
        let zeros_in = vec![false; self.chains.len()];
        // Sample the edge without shifting state (the controller gates the
        // clock so only the pulse generators see the edge; model: one scan
        // cycle whose shifted-in zeros land on a register that is about to
        // be overwritten by the unlock process, with state FFs restored).
        let saved_state = self.state.clone();
        self.clock(&vec![false; self.pi_pos.len()], &zeros_in);
        self.state = saved_state;
        self.set_scan_enable(false);
        if !self.trojan.hold_and_bypass_lfsr {
            // The pulse cleared the register (unless suppressed); for
            // suppressed cells the shift above may have moved bits — a real
            // Trojan would also gate the controller pulse, so restore those
            // cells to their pre-pulse values is unnecessary here: the
            // register is about to be rebuilt by the reseeding process.
            let mut st = self.key_reg.state();
            for (i, cell) in st.iter_mut().enumerate() {
                if !self.trojan.suppress_reset.get(i).copied().unwrap_or(false) {
                    *cell = false;
                }
            }
            self.key_reg.load(&st);
        }
        // State FFs start from reset for the unlock run.
        if !self.trojan.freeze_state_ffs {
            self.state.iter_mut().for_each(|b| *b = false);
        }

        self.unlocking = true;
        let pis = vec![
            self.design.unlock_stimulus.value();
            self.pi_pos.len()
        ];
        match self.design.variant {
            OrapVariant::Basic => {
                let words = self.design.key_sequence.clone();
                for word in &words {
                    self.inject_and_clock(word, &pis);
                    for _ in 0..self.design.free_run {
                        let zero = vec![false; self.design.memory_points.len()];
                        self.inject_and_clock(&zero, &pis);
                    }
                }
            }
            OrapVariant::Modified => {
                let words = self.design.key_sequence.clone();
                for word in &words {
                    self.inject_and_clock(word, &pis);
                }
            }
        }
        self.unlocking = false;
        if self.trojan.shadow_register {
            self.shadow = Some(self.key_reg.state());
        }
    }

    /// One unlock cycle: the memory word (and, for the modified variant, the
    /// live FF responses) is injected while the chip clocks functionally.
    fn inject_and_clock(&mut self, memory_word: &[bool], pis: &[bool]) {
        // The pulse generators see every clock; they must sample the (low)
        // scan_enable here or their edge detectors go stale and a later
        // scan entry would fail to clear the register.
        for pg in self.pulses.iter_mut() {
            let fired = pg.clock(self.scan_enable);
            debug_assert!(!fired, "scan_enable is low during unlock");
        }
        let mut injection = vec![false; self.design.lfsr.reseed_points.len()];
        for (&p, &b) in self.design.memory_points.iter().zip(memory_word) {
            injection[p] = b;
        }
        for (&p, &ff) in self
            .design
            .response_points
            .iter()
            .zip(&self.design.response_ffs)
        {
            injection[p] = self.state[ff];
        }
        // The circuit clocks with the *current* register state as key.
        let (_, next_state) = self.comb_eval(pis, &self.key_reg.state());
        if !(self.trojan.freeze_state_ffs && self.unlocking) {
            self.state = next_state;
        }
        self.key_reg.step(&injection);
    }

    /// The tester/attacker scan procedure: shift a full state image in,
    /// apply primary inputs for one capture cycle, shift the captured image
    /// out. Returns `(primary_outputs_at_capture, captured_image)`; the
    /// image covers state FFs and key cells in chain order
    /// ([`Self::image_layout`]).
    ///
    /// On an honest chip the key register was cleared when `scan_enable`
    /// rose, so the response corresponds to the *locked* circuit.
    ///
    /// # Panics
    ///
    /// Panics on width mismatches.
    pub fn scan_test(&mut self, image: &[bool], pis: &[bool]) -> (Vec<bool>, Vec<bool>) {
        let layout = self.image_layout();
        assert_eq!(image.len(), layout.len(), "image width mismatch");
        self.set_scan_enable(true);
        let depth = self
            .chains
            .iter()
            .map(|c| c.iter().filter(|cell| self.cell_visible_in_chain(cell)).count())
            .max()
            .unwrap_or(0);
        // Shift in: cell at position p (0 = nearest scan-in) receives its
        // value on cycle depth-1-p.
        for cycle in 0..depth {
            let bits: Vec<bool> = (0..self.chains.len())
                .map(|ci| {
                    let visible: Vec<usize> = self.visible_positions(ci);
                    let p = depth - 1 - cycle;
                    if p < visible.len() {
                        image[visible[p]]
                    } else {
                        false
                    }
                })
                .collect();
            self.clock(&vec![false; self.pi_pos.len()], &bits);
        }
        // Capture.
        self.set_scan_enable(false);
        let res = self.clock(pis, &vec![false; self.chains.len()]);
        // Shift out.
        self.set_scan_enable(true);
        let mut captured = vec![false; layout.len()];
        let zeros = vec![false; self.chains.len()];
        for cycle in 0..depth {
            let out = self.clock(&vec![false; self.pi_pos.len()], &zeros);
            for (ci, &bit) in out.scan_out.iter().enumerate() {
                let visible = self.visible_positions(ci);
                if let Some(p) = visible.len().checked_sub(1 + cycle) {
                    captured[visible[p]] = bit;
                }
            }
        }
        self.set_scan_enable(false);
        (res.outputs, captured)
    }

    /// Flat image layout used by [`Self::scan_test`]: index `k` of the image
    /// corresponds to `layout[k]`.
    pub fn image_layout(&self) -> Vec<ChainCell> {
        let mut layout = Vec::new();
        for ci in 0..self.chains.len() {
            for cell in &self.chains[ci] {
                if self.cell_visible_in_chain(cell) {
                    layout.push(*cell);
                }
            }
        }
        layout
    }

    fn visible_positions(&self, chain: usize) -> Vec<usize> {
        // Positions into the flat image for this chain's visible cells, in
        // shift order.
        let mut offset = 0;
        for prev in 0..chain {
            offset += self.chains[prev]
                .iter()
                .filter(|c| self.cell_visible_in_chain(c))
                .count();
        }
        let count = self.chains[chain]
            .iter()
            .filter(|c| self.cell_visible_in_chain(c))
            .count();
        (offset..offset + count).collect()
    }
}

/// Builds the chip's scan chains per the paper's guideline: LFSR cells are
/// placed *before* ordinary flip-flops and interleaved with them, so a
/// Trojan that excludes them from the chains needs a bypass mux per cell.
fn build_chains(num_ffs: usize, key_width: usize, num_chains: usize) -> Vec<Vec<ChainCell>> {
    let num_chains = num_chains.max(1);
    let mut chains = vec![Vec::new(); num_chains];
    // Distribute key cells round-robin, then interleave state FFs after
    // them chainwise (key cell, state FF, key cell, state FF, ... with key
    // cells leading).
    let mut key_iter = (0..key_width).map(ChainCell::Key);
    let mut ff_iter = (0..num_ffs).map(ChainCell::State);
    let mut ci = 0;
    loop {
        match (key_iter.next(), ff_iter.next()) {
            (Some(k), Some(f)) => {
                chains[ci].push(k);
                chains[ci].push(f);
            }
            (Some(k), None) => chains[ci].push(k),
            (None, Some(f)) => chains[ci].push(f),
            (None, None) => break,
        }
        ci = (ci + 1) % num_chains;
    }
    chains
}

/// How a [`ProtectedChipOracle`] reports the scan responses it obtains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleMode {
    /// The adapter knows the responses are locked-circuit outputs and
    /// reports the oracle as unavailable (`query` → `None`).
    Strict,
    /// The adapter naively returns whatever the chip scans out — which is
    /// the locked circuit's response; attacks then recover keys that fail
    /// verification.
    Naive,
}

/// The [`attacks::Oracle`] view of a [`ProtectedChip`]: queries are served
/// through the scan interface, so on an honest chip the key register is
/// cleared before any response can be captured.
#[derive(Debug, Clone)]
pub struct ProtectedChipOracle {
    chip: ProtectedChip,
    mode: OracleMode,
    queries: usize,
    /// Cached correct-response map for detecting whether the chip leaks
    /// (None in normal operation; used by tests via `leak_check`).
    reference: Option<CombSim>,
}

impl ProtectedChipOracle {
    /// Wraps a chip. The chip is unlocked first (the attacker bought a
    /// functional, activated part from the open market).
    pub fn new(mut chip: ProtectedChip, mode: OracleMode) -> Self {
        chip.power_on_and_unlock();
        ProtectedChipOracle {
            chip,
            mode,
            queries: 0,
            reference: None,
        }
    }

    /// Access to the underlying chip (white-box, for experiments).
    pub fn chip_mut(&mut self) -> &mut ProtectedChip {
        &mut self.chip
    }

    /// Performs the raw scan-based query and returns whatever the chip
    /// produces (primary outputs ++ captured state-FF image), regardless of
    /// mode. This is the locked response on an honest chip.
    pub fn raw_scan_query(&mut self, input: &[bool]) -> Vec<bool> {
        let n_pi = self.chip.num_primary_inputs();
        assert_eq!(
            input.len(),
            n_pi + self.chip.num_state_ffs(),
            "query covers PIs then state image"
        );
        let (pis, state_bits) = input.split_at(n_pi);
        // Build the scan image: state FF values as requested, key cells as
        // zeros (the attacker has nothing better to put there).
        let layout = self.chip.image_layout();
        let mut image = vec![false; layout.len()];
        for (k, cell) in layout.iter().enumerate() {
            if let ChainCell::State(i) = cell {
                image[k] = state_bits[*i];
            }
        }
        let (pos, captured) = self.chip.scan_test(&image, pis);
        // Extract captured state FFs in DFF order.
        let mut next_state = vec![false; self.chip.num_state_ffs()];
        for (k, cell) in layout.iter().enumerate() {
            if let ChainCell::State(i) = cell {
                next_state[*i] = captured[k];
            }
        }
        let mut resp = pos;
        resp.extend(next_state);
        resp
    }

    /// White-box check used by experiments: would this scan response match
    /// the true unlocked circuit?
    ///
    /// # Errors
    ///
    /// Returns a netlist error if the locked circuit is cyclic.
    pub fn response_is_correct(&mut self, input: &[bool]) -> Result<bool, Error> {
        if self.reference.is_none() {
            self.reference = Some(CombSim::new(&self.chip.design.locked.circuit)?);
        }
        let got = self.raw_scan_query(input);
        let sim = self.reference.as_ref().expect("just set");
        let chip = &self.chip;
        let mut full = vec![false; sim.inputs().len()];
        let (pis, state_bits) = input.split_at(chip.num_primary_inputs());
        for (&p, &b) in chip.pi_pos.iter().zip(pis) {
            full[p] = b;
        }
        for (&p, &b) in chip.state_pos.iter().zip(state_bits) {
            full[p] = b;
        }
        for (&p, &b) in chip
            .key_pos
            .iter()
            .zip(&chip.design.locked.correct_key)
        {
            full[p] = b;
        }
        let words: Vec<u64> = full.iter().map(|&b| if b { !0 } else { 0 }).collect();
        let want: Vec<bool> = sim
            .eval_words(&words)
            .into_iter()
            .map(|w| w & 1 == 1)
            .collect();
        Ok(got == want)
    }
}

impl attacks::Oracle for ProtectedChipOracle {
    fn num_inputs(&self) -> usize {
        self.chip.num_primary_inputs() + self.chip.num_state_ffs()
    }

    fn num_outputs(&self) -> usize {
        self.chip.num_primary_outputs() + self.chip.num_state_ffs()
    }

    fn query(&mut self, input: &[bool]) -> Option<Vec<bool>> {
        self.queries += 1;
        match self.mode {
            OracleMode::Strict => {
                // The scan responses come from the locked circuit (key
                // register cleared); a knowledgeable attacker discards them.
                let _ = self.raw_scan_query(input);
                None
            }
            OracleMode::Naive => Some(self.raw_scan_query(input)),
        }
    }

    fn queries_attempted(&self) -> usize {
        self.queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{protect, OrapConfig, OrapVariant};
    use locking::weighted::WllConfig;
    use netlist::samples;

    fn protected_counter(variant: OrapVariant) -> crate::OrapProtected {
        let design = samples::counter(10);
        protect(
            &design,
            &WllConfig {
                key_bits: 8,
                control_width: 3,
                seed: 7,
            },
            &OrapConfig {
                variant,
                ..OrapConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn unlock_produces_correct_key_basic() {
        let p = protected_counter(OrapVariant::Basic);
        let mut chip = ProtectedChip::new(&p).unwrap();
        assert!(!chip.key_register_holds_correct_key());
        chip.power_on_and_unlock();
        assert!(chip.key_register_holds_correct_key());
    }

    #[test]
    fn unlock_produces_correct_key_modified() {
        let p = protected_counter(OrapVariant::Modified);
        let mut chip = ProtectedChip::new(&p).unwrap();
        chip.power_on_and_unlock();
        assert!(chip.key_register_holds_correct_key());
    }

    #[test]
    fn scan_enable_clears_key_register() {
        let p = protected_counter(OrapVariant::Basic);
        let mut chip = ProtectedChip::new(&p).unwrap();
        chip.power_on_and_unlock();
        assert!(chip.key_register_holds_correct_key());
        chip.set_scan_enable(true);
        let res = chip.clock(&[false], &vec![false; chip.num_scan_chains()]);
        // The pulse fires before the first shift: the key is destroyed and
        // the bits appearing on the scan-out pins carry no key information
        // (chains whose last cell is a key cell emit 0).
        assert!(!chip.key_register_holds_correct_key());
        let layout_tails: Vec<ChainCell> = chip
            .chains()
            .iter()
            .filter_map(|c| c.last().copied())
            .collect();
        for (tail, &out) in layout_tails.iter().zip(&res.scan_out) {
            if matches!(tail, ChainCell::Key(_)) {
                assert!(!out, "key cell at chain tail must scan out 0");
            }
        }
    }

    #[test]
    fn functional_operation_after_unlock_matches_original() {
        let design = samples::counter(10);
        let p = protect(
            &design,
            &WllConfig {
                key_bits: 8,
                control_width: 3,
                seed: 7,
            },
            &OrapConfig::default(),
        )
        .unwrap();
        let mut chip = ProtectedChip::new(&p).unwrap();
        chip.power_on_and_unlock();
        // Reset state, then run the counter; it must count like the
        // original.
        chip.set_state_ffs(&[false; 10]);
        let mut reference = gatesim::SeqSim::new(&design).unwrap();
        for _ in 0..20 {
            let out = chip.clock(&[true], &vec![false; chip.num_scan_chains()]);
            let want = reference.step(&[true]);
            assert_eq!(out.outputs, want);
        }
    }

    #[test]
    fn locked_chip_behaves_incorrectly_without_unlock() {
        let design = samples::counter(10);
        let p = protect(
            &design,
            &WllConfig {
                key_bits: 8,
                control_width: 3,
                seed: 7,
            },
            &OrapConfig::default(),
        )
        .unwrap();
        let mut chip = ProtectedChip::new(&p).unwrap();
        // No unlock: key register all zero (reset state).
        let mut reference = gatesim::SeqSim::new(&design).unwrap();
        let mut diverged = false;
        for _ in 0..30 {
            let out = chip.clock(&[true], &vec![false; chip.num_scan_chains()]);
            let want = reference.step(&[true]);
            if out.outputs != want {
                diverged = true;
                break;
            }
        }
        assert!(diverged, "locked chip must not behave like the original");
    }

    #[test]
    fn scan_test_returns_locked_circuit_response() {
        // The heart of OraP: the captured response corresponds to the
        // LOCKED circuit (key register cleared, then loaded with the
        // attacker's image — all zero here), not the true function.
        let p = protected_counter(OrapVariant::Basic);
        let mut chip = ProtectedChip::new(&p).unwrap();
        let layout = chip.image_layout();
        let mut image = vec![false; layout.len()];
        let state_bits: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        for (k, cell) in layout.iter().enumerate() {
            if let ChainCell::State(i) = cell {
                image[k] = state_bits[*i];
            }
        }
        let (pos, captured) = chip.scan_test(&image, &[false]);
        // Reference: locked circuit with key = all-zero.
        let sim = gatesim::CombSim::new(&p.locked.circuit).unwrap();
        let mut input = vec![0u64; sim.inputs().len()];
        let key_set: std::collections::HashSet<_> =
            p.locked.key_inputs.iter().copied().collect();
        let mut state_iter = state_bits.iter();
        let dff_qs: Vec<_> = p.locked.circuit.dffs().iter().map(|d| d.q).collect();
        for (i, n) in sim.inputs().iter().enumerate() {
            if key_set.contains(n) {
                input[i] = 0;
            } else if dff_qs.contains(n) {
                input[i] = if *state_iter.next().unwrap() { !0 } else { 0 };
            } else {
                input[i] = 0; // en = false
            }
        }
        let out = sim.eval_words(&input);
        let bits: Vec<bool> = out.into_iter().map(|w| w & 1 == 1).collect();
        let n_pos = p.locked.circuit.primary_outputs().len();
        assert_eq!(pos, bits[..n_pos].to_vec(), "primary outputs");
        let want_state = &bits[n_pos..];
        for (k, cell) in layout.iter().enumerate() {
            if let ChainCell::State(i) = cell {
                assert_eq!(captured[k], want_state[*i], "state FF {i}");
            }
        }
    }

    #[test]
    fn honest_chip_never_scans_out_correct_responses() {
        let p = protected_counter(OrapVariant::Basic);
        let chip = ProtectedChip::new(&p).unwrap();
        let mut oracle = ProtectedChipOracle::new(chip, OracleMode::Naive);
        let mut rng = netlist::rng::SplitMix64::new(3);
        let n = 1 + 10; // en + state image
        let mut any_correct = false;
        let mut all_correct = true;
        for _ in 0..24 {
            let input: Vec<bool> = (0..n).map(|_| rng.bool()).collect();
            let ok = oracle.response_is_correct(&input).unwrap();
            any_correct |= ok;
            all_correct &= ok;
        }
        assert!(
            !all_correct,
            "locked responses must differ from unlocked ones somewhere"
        );
        // Some patterns may coincide by chance; what matters is that the
        // correct function is not reproduced wholesale.
        let _ = any_correct;
    }

    #[test]
    fn chains_interleave_key_cells_first() {
        let chains = build_chains(6, 4, 2);
        // Chain 0 starts with a key cell.
        assert!(matches!(chains[0][0], ChainCell::Key(_)));
        let total: usize = chains.iter().map(Vec::len).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn strict_oracle_returns_none() {
        let p = protected_counter(OrapVariant::Basic);
        let chip = ProtectedChip::new(&p).unwrap();
        let mut oracle = ProtectedChipOracle::new(chip, OracleMode::Strict);
        use attacks::Oracle as _;
        assert_eq!(oracle.query(&vec![false; oracle.num_inputs()]), None);
        assert_eq!(oracle.queries_attempted(), 1);
    }
}
