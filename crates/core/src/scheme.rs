//! Construction of an OraP-protected design.
//!
//! The designer-side flow: lock the combinational part with weighted logic
//! locking, configure the key-register LFSR (characteristic polynomial with
//! a tap every `tap_spacing` cells, reseeding points), pick the unlock
//! schedule shape, and *solve over GF(2)* for the memory words (the key
//! sequence) that make the LFSR land exactly on the lock's correct key.
//!
//! For the modified scheme (Fig. 3), part of the injections come from
//! circuit flip-flops, which couples the key-register trajectory to the
//! circuit's own (locked) responses. Seed solving stays *exact* by
//! exploiting propagation delay: a memory word injected at cycle `t` cannot
//! influence a tapped flip-flop before cycle `t + 1 + depth`, where `depth`
//! is the flip-flop's sequential distance from the nearest key gate. The
//! construction taps the deepest flip-flops, plays zero words for the head
//! of the schedule, and solves the GF(2) system over only the tail cycles —
//! which provably cannot disturb the response stream (see DESIGN.md).

use std::collections::HashSet;

use lfsr::gf2::{BitMatrix, BitVec};
use lfsr::{KeySequence, Lfsr, LfsrConfig, UnlockSchedule};
use locking::weighted::{self, WllConfig};
use locking::LockedCircuit;
use netlist::{Circuit, NetId, TransitiveFanin};

/// Which OraP variant to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OrapVariant {
    /// Fig. 1: all reseeding points driven by the tamper-proof memory.
    #[default]
    Basic,
    /// Fig. 3: half the reseeding points driven by circuit flip-flops, so
    /// the responses produced *during* unlocking are needed to unlock.
    Modified,
}

/// The fixed primary-input stimulus the logic-locking controller applies
/// while the unlock process runs. Any agreed constant works; the modified
/// scheme needs one that makes the tapped flip-flops actually toggle from
/// reset (all-ones suits enable-style inputs, hence the default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UnlockStimulus {
    /// Hold every primary input low.
    AllZero,
    /// Hold every primary input high.
    #[default]
    AllOnes,
}

impl UnlockStimulus {
    /// The constant value applied to each primary input.
    pub fn value(self) -> bool {
        matches!(self, UnlockStimulus::AllOnes)
    }
}

/// OraP configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct OrapConfig {
    /// Scheme variant.
    pub variant: OrapVariant,
    /// Primary-input stimulus during unlocking.
    pub unlock_stimulus: UnlockStimulus,
    /// New feedback tap every this many LFSR cells (the paper uses 8).
    pub tap_spacing: usize,
    /// Seeds in the key sequence (auto-raised until the GF(2) system is
    /// solvable, up to 4× this value).
    pub unlock_seeds: usize,
    /// Free-run cycles after each seed (Basic variant; the Modified variant
    /// injects responses on every cycle, so "free run" means an all-zero
    /// memory word).
    pub free_run: usize,
    /// Number of scan chains on the chip.
    pub scan_chains: usize,
    /// PRNG seed for all designer-side choices.
    pub seed: u64,
}

impl Default for OrapConfig {
    fn default() -> Self {
        OrapConfig {
            variant: OrapVariant::Basic,
            unlock_stimulus: UnlockStimulus::AllOnes,
            tap_spacing: 8,
            unlock_seeds: 4,
            free_run: 2,
            scan_chains: 4,
            seed: 0x0DA7,
        }
    }
}

/// Errors during OraP construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OrapError {
    /// The underlying netlist/locking step failed.
    Netlist(netlist::Error),
    /// The GF(2) system for the key sequence was unsolvable even after
    /// extending the schedule (insufficient controllability).
    Unsolvable {
        /// Rank achieved versus the key width.
        rank: usize,
        /// Key width required.
        width: usize,
    },
    /// The design has no flip-flops but the modified variant needs them.
    NoFlipFlops,
}

impl std::fmt::Display for OrapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrapError::Netlist(e) => write!(f, "netlist error: {e}"),
            OrapError::Unsolvable { rank, width } => write!(
                f,
                "key sequence unsolvable: seed-to-key rank {rank} < key width {width}"
            ),
            OrapError::NoFlipFlops => {
                write!(f, "modified OraP needs circuit flip-flops to tap")
            }
        }
    }
}

impl std::error::Error for OrapError {}

impl From<netlist::Error> for OrapError {
    fn from(e: netlist::Error) -> Self {
        OrapError::Netlist(e)
    }
}

/// A fully constructed OraP-protected design: everything the designer tapes
/// out plus the secrets that go to the tamper-proof memory.
#[derive(Debug, Clone)]
pub struct OrapProtected {
    /// The WLL-locked netlist (key inputs driven by the LFSR cells on chip).
    pub locked: LockedCircuit,
    /// The key-register configuration.
    pub lfsr: LfsrConfig,
    /// Scheme variant.
    pub variant: OrapVariant,
    /// Reseeding points driven by the tamper-proof memory.
    pub memory_points: Vec<usize>,
    /// Reseeding points driven by circuit flip-flops (empty for Basic).
    pub response_points: Vec<usize>,
    /// Flip-flop indices (into the design's [`Circuit::dffs`]) feeding the
    /// response points, positionally matched to `response_points`.
    pub response_ffs: Vec<usize>,
    /// The secret key sequence: one memory word per unlock cycle
    /// (word width = `memory_points.len()`).
    pub key_sequence: Vec<Vec<bool>>,
    /// Free-run cycles after each seed (Basic variant only; Modified runs
    /// every cycle with response injection).
    pub free_run: usize,
    /// Primary-input stimulus applied by the unlock controller.
    pub unlock_stimulus: UnlockStimulus,
    /// Number of scan chains.
    pub scan_chains: usize,
    /// Hardware cost of the OraP additions, in gate counts that Table I
    /// folds into the area overhead.
    pub hardware: OrapHardwareCost,
}

/// The extra gates OraP adds (beyond the WLL key gates), per the paper's
/// accounting: reseeding XORs + characteristic-polynomial XORs + one pulse
/// generator per cell (the NAND2; inverters are excluded from gate counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrapHardwareCost {
    /// XOR gates (reseeding points + feedback taps − 1).
    pub xor_gates: usize,
    /// Pulse-generator NAND gates (one per LFSR cell).
    pub pulse_nands: usize,
}

impl OrapHardwareCost {
    /// Total extra gates, excluding inverters (the Table I convention; the
    /// LFSR flip-flops are excluded too because every locking scheme needs a
    /// key register).
    pub fn gates(&self) -> usize {
        self.xor_gates + self.pulse_nands
    }
}

impl OrapProtected {
    /// Key width (= LFSR width).
    pub fn key_bits(&self) -> usize {
        self.lfsr.width
    }

    /// Unlock latency in clock cycles.
    pub fn unlock_cycles(&self) -> usize {
        match self.variant {
            OrapVariant::Basic => self.key_sequence.len() * (1 + self.free_run),
            OrapVariant::Modified => self.key_sequence.len(),
        }
    }

    /// The FF trajectory injected at the response points during an honest
    /// unlock (one vector per cycle), from the chip-accurate coupled
    /// simulation. Empty for the Basic variant.
    pub fn honest_response_stream(&self, design: &Circuit) -> Vec<Vec<bool>> {
        let (stream, _) = simulate_modified_unlock(
            design,
            &self.locked,
            &self.lfsr,
            &self.memory_points,
            &self.response_points,
            &self.response_ffs,
            &self.key_sequence,
            self.unlock_stimulus,
        );
        stream
    }
}

/// Chip-accurate simulation of the modified unlock process: the circuit's
/// flip-flops and the key register co-evolve (the key gates see the evolving
/// LFSR state; the LFSR sees the flip-flop responses). Returns the response
/// stream (per-cycle values at the tapped flip-flops, sampled before the
/// clock) and the final key-register state.
#[allow(clippy::too_many_arguments)]
fn simulate_modified_unlock(
    design: &Circuit,
    locked: &LockedCircuit,
    lfsr_cfg: &LfsrConfig,
    memory_points: &[usize],
    response_points: &[usize],
    response_ffs: &[usize],
    seeds: &[Vec<bool>],
    stimulus: UnlockStimulus,
) -> (Vec<Vec<bool>>, Vec<bool>) {
    let comb = gatesim::CombSim::new(&locked.circuit).expect("validated circuit");
    let n_orig_pis = design.primary_inputs().len();
    // Classify combinational input positions: original PIs, key inputs, FFs.
    let key_nets: HashSet<NetId> = locked.key_inputs.iter().copied().collect();
    let dff_qs: Vec<NetId> = locked.circuit.dffs().iter().map(|d| d.q).collect();
    let mut key_pos = vec![usize::MAX; locked.key_inputs.len()];
    let mut state_pos = Vec::new();
    let mut pi_pos = Vec::new();
    for (i, n) in comb.inputs().iter().enumerate() {
        if key_nets.contains(n) {
            let k = locked
                .key_inputs
                .iter()
                .position(|kn| kn == n)
                .expect("in set");
            key_pos[k] = i;
        } else if dff_qs.contains(n) {
            state_pos.push(i);
        } else {
            pi_pos.push(i);
        }
    }
    debug_assert_eq!(pi_pos.len(), n_orig_pis);

    let n_pos = locked.circuit.primary_outputs().len();
    let mut state = vec![false; dff_qs.len()];
    let mut reg = Lfsr::new(lfsr_cfg.clone());
    let mut stream = Vec::with_capacity(seeds.len());
    for word in seeds {
        let responses: Vec<bool> = response_ffs.iter().map(|&f| state[f]).collect();
        let mut injection = vec![false; lfsr_cfg.reseed_points.len()];
        for (&p, &b) in memory_points.iter().zip(word) {
            injection[p] = b;
        }
        for (&p, &b) in response_points.iter().zip(&responses) {
            injection[p] = b;
        }
        stream.push(responses);
        // Circuit clocks with the current register state as key.
        let mut input = vec![0u64; comb.inputs().len()];
        for &p in &pi_pos {
            input[p] = if stimulus.value() { !0 } else { 0 };
        }
        for (&p, &b) in state_pos.iter().zip(&state) {
            input[p] = if b { !0 } else { 0 };
        }
        for (&p, b) in key_pos.iter().zip(reg.state()) {
            input[p] = if b { !0 } else { 0 };
        }
        let out = comb.eval_words(&input);
        state = out[n_pos..].iter().map(|w| w & 1 == 1).collect();
        reg.step(&injection);
    }
    (stream, reg.state())
}

/// Flip-flops whose *sequential* input cone (transitive through other
/// flip-flops) avoids every net in `avoid`: their unlock-time trajectory is
/// independent of the key-register state.
pub fn sequentially_clean_ffs(circuit: &Circuit, avoid: &HashSet<NetId>) -> Vec<usize> {
    let dffs = circuit.dffs();
    let n = dffs.len();
    // d-cone of each FF and which FFs it reads.
    let mut cone_dirty = vec![false; n];
    let mut reads: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, dff) in dffs.iter().enumerate() {
        let cone = TransitiveFanin::of(circuit, [dff.d]);
        cone_dirty[i] = avoid.iter().any(|net| cone.contains(*net));
        for (j, other) in dffs.iter().enumerate() {
            if cone.contains(other.q) {
                reads[i].push(j);
            }
        }
    }
    // Fixpoint: an FF is dirty if its cone is dirty or it reads a dirty FF.
    let mut dirty = cone_dirty;
    loop {
        let mut changed = false;
        for i in 0..n {
            if !dirty[i] && reads[i].iter().any(|&j| dirty[j]) {
                dirty[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    (0..n).filter(|&i| !dirty[i]).collect()
}

/// Builds an OraP-protected design from `design`.
///
/// The returned [`OrapProtected`] carries the locked netlist, the LFSR and
/// scan configuration, and the solved key sequence whose execution leaves
/// the LFSR holding exactly the lock's correct key.
///
/// # Errors
///
/// - [`OrapError::Netlist`] if locking fails (e.g. too few lockable nets);
/// - [`OrapError::NoFlipFlops`] for [`OrapVariant::Modified`] on a purely
///   combinational design;
/// - [`OrapError::Unsolvable`] if the schedule cannot reach the key even
///   after extension (pathological LFSR configurations).
pub fn protect(
    design: &Circuit,
    wll: &WllConfig,
    config: &OrapConfig,
) -> Result<OrapProtected, OrapError> {
    match config.variant {
        OrapVariant::Basic => protect_basic(design, wll, config),
        OrapVariant::Modified => protect_modified(design, wll, config),
    }
}

fn build_lfsr(width: usize, tap_spacing: usize) -> LfsrConfig {
    LfsrConfig::with_tap_spacing(width, tap_spacing.max(1))
}

fn hardware_cost(lfsr: &LfsrConfig) -> OrapHardwareCost {
    OrapHardwareCost {
        xor_gates: lfsr.xor_gate_cost(),
        pulse_nands: lfsr.width,
    }
}

fn protect_basic(
    design: &Circuit,
    wll: &WllConfig,
    config: &OrapConfig,
) -> Result<OrapProtected, OrapError> {
    let locked = weighted::lock(design, wll)?;
    let width = locked.key_bits();
    let lfsr = build_lfsr(width, config.tap_spacing);
    // All points memory-driven.
    let memory_points: Vec<usize> = lfsr.reseed_points.clone();

    // Solve for seeds; extend the schedule if the map lacks rank.
    let mut seeds_count = config.unlock_seeds.max(1);
    let max_seeds = (config.unlock_seeds.max(1)) * 4;
    loop {
        let shape = KeySequence::new(
            vec![vec![false; memory_points.len()]; seeds_count],
            vec![config.free_run; seeds_count],
        );
        let schedule = UnlockSchedule::new(lfsr.clone(), shape);
        match schedule.solve_seeds_for_key(&locked.correct_key) {
            Some(solved) => {
                debug_assert_eq!(
                    UnlockSchedule::new(lfsr.clone(), solved.clone()).derive_key(),
                    locked.correct_key
                );
                let hardware = hardware_cost(&lfsr);
                return Ok(OrapProtected {
                    locked,
                    lfsr,
                    variant: OrapVariant::Basic,
                    memory_points,
                    response_points: Vec::new(),
                    response_ffs: Vec::new(),
                    key_sequence: solved.seeds,
                    free_run: config.free_run,
                    unlock_stimulus: config.unlock_stimulus,
                    scan_chains: config.scan_chains.max(1),
                    hardware,
                });
            }
            None if seeds_count < max_seeds => seeds_count *= 2,
            None => {
                let (a, _) = UnlockSchedule::new(
                    lfsr.clone(),
                    KeySequence::new(
                        vec![vec![false; memory_points.len()]; seeds_count],
                        vec![config.free_run; seeds_count],
                    ),
                )
                .seed_to_key_map();
                return Err(OrapError::Unsolvable {
                    rank: a.rank(),
                    width,
                });
            }
        }
    }
}

fn protect_modified(
    design: &Circuit,
    wll: &WllConfig,
    config: &OrapConfig,
) -> Result<OrapProtected, OrapError> {
    if design.dffs().is_empty() {
        return Err(OrapError::NoFlipFlops);
    }
    // 1. Lock first: plain impact-guided WLL, unconstrained (best HD).
    let locked = weighted::lock(design, wll)?;
    let width = locked.key_bits();
    let key_nets: HashSet<NetId> = locked.key_inputs.iter().copied().collect();

    // 2. Key sequential distance of every flip-flop: depth(f) = 1 when a
    //    key gate sits in f's direct input cone, else 1 + min depth of the
    //    flip-flops that cone reads (usize::MAX = never influenced). The
    //    value a flip-flop holds at cycle u of the unlock process is
    //    key-independent for all u < depth(f).
    let dffs = locked.circuit.dffs().to_vec();
    let nf = dffs.len();
    let mut reads: Vec<Vec<usize>> = vec![Vec::new(); nf];
    let mut depth: Vec<usize> = vec![usize::MAX; nf];
    for (i, dff) in dffs.iter().enumerate() {
        let cone = TransitiveFanin::of(&locked.circuit, [dff.d]);
        if key_nets.iter().any(|k| cone.contains(*k)) {
            depth[i] = 1;
        }
        for (j, other) in dffs.iter().enumerate() {
            if cone.contains(other.q) {
                reads[i].push(j);
            }
        }
    }
    loop {
        let mut changed = false;
        for i in 0..nf {
            let via: usize = reads[i]
                .iter()
                .map(|&j| depth[j].saturating_add(1))
                .min()
                .unwrap_or(usize::MAX);
            if via < depth[i] {
                depth[i] = via;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // 3. Tap the deepest (least key-coupled) flip-flops; try progressively
    //    fewer taps until the tail system below is solvable.
    let mut by_depth: Vec<usize> = (0..nf).collect();
    by_depth.sort_by_key(|&i| std::cmp::Reverse(depth[i]));
    let want_responses = (width / 2).max(1).min(nf);
    let lfsr = build_lfsr(width, config.tap_spacing);

    let mut r = want_responses;
    loop {
        let response_ffs: Vec<usize> = by_depth[..r].to_vec();
        // Tail length: seeds injected at cycle t reach the key inputs at
        // cycle t+1 and a tapped value at cycle t+1+depth; with the stream
        // read up to cycle `cycles-1`, the last `depth_min` cycles of seeds
        // cannot disturb it.
        let depth_min = response_ffs
            .iter()
            .map(|&f| depth[f])
            .min()
            .unwrap_or(usize::MAX)
            .clamp(1, 16);

        // Interleave response and memory points (the paper's guideline).
        let mut response_points = Vec::with_capacity(r);
        let mut memory_points = Vec::with_capacity(width - r);
        for cell in 0..width {
            if cell % 2 == 1 && response_points.len() < r {
                response_points.push(cell);
            } else {
                memory_points.push(cell);
            }
        }
        let m = memory_points.len();

        // Tail map: contribution of the last `k` cycles of memory words.
        // A seed injected at cycle t reaches a tapped flip-flop's value no
        // earlier than cycle t + 1 + depth, so the last `depth_min + 1`
        // cycles provably cannot disturb the stream. Search that window for
        // the smallest tail with full rank.
        let k_max = depth_min.saturating_add(1).min(64);
        let mut k = width.div_ceil(m).max(1).min(k_max);
        let a_tail = loop {
            let mem_lfsr =
                LfsrConfig::new(width, lfsr.taps.clone(), memory_points.clone());
            let tail_shape = KeySequence::new(vec![vec![false; m]; k], vec![0; k]);
            let (a, _) = UnlockSchedule::new(mem_lfsr, tail_shape).seed_to_key_map();
            if a.rank() == width {
                break a;
            }
            if k < k_max {
                k += 1;
                continue;
            }
            if r > 1 {
                break BitMatrix::zeros(0, 0); // sentinel: retry with fewer taps
            }
            return Err(OrapError::Unsolvable {
                rank: a.rank(),
                width,
            });
        };
        if a_tail.rows() == 0 {
            r /= 2;
            continue;
        }

        // Head: enough zero cycles that the schedule looks like the paper's
        // multi-seed process (and gives the response stream time to mix).
        let head = (config.unlock_seeds.max(1) * 2).max(4);
        let cycles = head + k;
        let zero_seeds = vec![vec![false; m]; cycles];
        let (stream, _) = simulate_modified_unlock(
            design,
            &locked,
            &lfsr,
            &memory_points,
            &response_points,
            &response_ffs,
            &zero_seeds,
            config.unlock_stimulus,
        );
        // c: key-register state after the full schedule with zero memory
        // words but the real response stream.
        let mut reg = Lfsr::new(lfsr.clone());
        for resp in &stream {
            let mut injection = vec![false; lfsr.reseed_points.len()];
            for (&p, &v) in response_points.iter().zip(resp) {
                injection[p] = v;
            }
            reg.step(&injection);
        }
        let mut rhs = BitVec::from_bools(&locked.correct_key);
        rhs.xor_assign(&BitVec::from_bools(&reg.state()));
        let sol = a_tail.solve(&rhs).expect("rank checked above");
        let mut seeds = vec![vec![false; m]; head];
        for cyc in 0..k {
            seeds.push((0..m).map(|j| sol.get(cyc * m + j)).collect());
        }

        // Designer verification: the coupled execution must land exactly on
        // the correct key (guaranteed when the tail really cannot disturb
        // the stream; checked here unconditionally).
        let (_, key) = simulate_modified_unlock(
            design,
            &locked,
            &lfsr,
            &memory_points,
            &response_points,
            &response_ffs,
            &seeds,
            config.unlock_stimulus,
        );
        if key != locked.correct_key {
            if r > 1 {
                r /= 2;
                continue;
            }
            return Err(OrapError::Unsolvable { rank: width, width });
        }

        let hardware = hardware_cost(&lfsr);
        let protected = OrapProtected {
            locked,
            lfsr,
            variant: OrapVariant::Modified,
            memory_points,
            response_points,
            response_ffs,
            key_sequence: seeds,
            free_run: 0,
            unlock_stimulus: config.unlock_stimulus,
            scan_chains: config.scan_chains.max(1),
            hardware,
        };
        debug_assert_eq!(
            derive_key_modified(design, &protected),
            protected.locked.correct_key
        );
        return Ok(protected);
    }
}

/// Honest (Trojan-free) execution of the modified unlock process: the
/// chip-accurate coupled simulation of the circuit's flip-flops and the key
/// register. Returns the final key-register state.
pub fn derive_key_modified(design: &Circuit, protected: &OrapProtected) -> Vec<bool> {
    let (_, key) = simulate_modified_unlock(
        design,
        &protected.locked,
        &protected.lfsr,
        &protected.memory_points,
        &protected.response_points,
        &protected.response_ffs,
        &protected.key_sequence,
        protected.unlock_stimulus,
    );
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;

    fn wll(bits: usize) -> WllConfig {
        WllConfig {
            key_bits: bits,
            control_width: 3,
            seed: 5,
        }
    }

    #[test]
    fn basic_scheme_lands_on_correct_key() {
        let design = samples::counter(8);
        let p = protect(&design, &wll(12), &OrapConfig::default()).unwrap();
        let shape = KeySequence::new(
            p.key_sequence.clone(),
            vec![p.free_run; p.key_sequence.len()],
        );
        let schedule = UnlockSchedule::new(p.lfsr.clone(), shape);
        assert_eq!(schedule.derive_key(), p.locked.correct_key);
    }

    #[test]
    fn basic_scheme_on_combinational_design() {
        let design = samples::ripple_adder(8);
        let p = protect(&design, &wll(9), &OrapConfig::default()).unwrap();
        assert_eq!(p.key_bits(), 9);
        assert!(p.unlock_cycles() > 0);
    }

    #[test]
    fn modified_scheme_lands_on_correct_key() {
        let design = samples::counter(10);
        let cfg = OrapConfig {
            variant: OrapVariant::Modified,
            ..OrapConfig::default()
        };
        let p = protect(&design, &wll(8), &cfg).unwrap();
        assert_eq!(p.variant, OrapVariant::Modified);
        assert!(!p.response_points.is_empty());
        assert_eq!(derive_key_modified(&design, &p), p.locked.correct_key);
    }

    #[test]
    fn modified_scheme_on_generated_benchmark() {
        let profile = netlist::generate::profile(netlist::generate::BenchmarkId::B20)
            .scaled(0.02);
        let design = netlist::generate::synthesize(&profile).unwrap();
        let cfg = OrapConfig {
            variant: OrapVariant::Modified,
            ..OrapConfig::default()
        };
        let p = protect(&design, &wll(16), &cfg).unwrap();
        assert_eq!(derive_key_modified(&design, &p), p.locked.correct_key);
    }

    #[test]
    fn modified_needs_flip_flops() {
        let design = samples::ripple_adder(4);
        let cfg = OrapConfig {
            variant: OrapVariant::Modified,
            ..OrapConfig::default()
        };
        assert_eq!(
            protect(&design, &wll(6), &cfg).unwrap_err(),
            OrapError::NoFlipFlops
        );
    }

    #[test]
    fn wrong_responses_yield_wrong_key() {
        // The modified scheme's core property: freeze the responses (all
        // zero, as a Trojan holding the FFs in reset would) and the derived
        // key is wrong.
        let design = samples::counter(10);
        let cfg = OrapConfig {
            variant: OrapVariant::Modified,
            ..OrapConfig::default()
        };
        let p = protect(&design, &wll(8), &cfg).unwrap();
        let mut reg = Lfsr::new(p.lfsr.clone());
        for word in &p.key_sequence {
            let mut injection = vec![false; p.lfsr.reseed_points.len()];
            for (&pt, &v) in p.memory_points.iter().zip(word) {
                injection[pt] = v;
            }
            // response points: frozen at zero
            reg.step(&injection);
        }
        assert_ne!(
            reg.state(),
            p.locked.correct_key,
            "frozen responses must corrupt the key"
        );
    }

    #[test]
    fn hardware_cost_accounting() {
        let design = samples::counter(8);
        let p = protect(&design, &wll(12), &OrapConfig::default()).unwrap();
        // tap-spacing-8 LFSR of width 12: taps {0, 8, 11} -> 2 XORs,
        // 12 reseed XORs, 12 pulse NANDs.
        assert_eq!(p.hardware.xor_gates, 12 + 2);
        assert_eq!(p.hardware.pulse_nands, 12);
        assert_eq!(p.hardware.gates(), 26);
    }

    #[test]
    fn clean_ff_analysis_detects_key_cones() {
        let design = samples::counter(6);
        let locked = weighted::lock(&design, &wll(6)).unwrap();
        let key_nets: HashSet<NetId> = locked.key_inputs.iter().copied().collect();
        let clean = sequentially_clean_ffs(&locked.circuit, &key_nets);
        // The counter is a carry chain: key gates on low bits dirty all
        // higher bits; whatever is clean must genuinely avoid key nets.
        for &f in &clean {
            let d = locked.circuit.dffs()[f].d;
            let cone = TransitiveFanin::of(&locked.circuit, [d]);
            for k in &key_nets {
                assert!(!cone.contains(*k));
            }
        }
    }

    #[test]
    fn unlock_cycles_reported() {
        let design = samples::counter(8);
        let p = protect(&design, &wll(12), &OrapConfig::default()).unwrap();
        assert_eq!(
            p.unlock_cycles(),
            p.key_sequence.len() * (1 + p.free_run)
        );
    }
}
