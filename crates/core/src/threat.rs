//! Executable models of the paper's Section III threat scenarios and their
//! countermeasures.
//!
//! The threat model: an untrusted foundry implants a Trojan that must leave
//! the chip's functional behaviour intact (activated chips undergo standard
//! tests and side-channel analysis in the owner's trusted environment). The
//! OraP design guidelines therefore aim to *inflate the Trojan's payload*
//! until power side-channel analysis detects it. Each scenario here can be
//! (1) switched on in the [`ProtectedChip`] model to demonstrate what it
//! buys the attacker, and (2) costed in gate equivalents under the baseline
//! and the hardened design guidelines.

use lfsr::symbolic::XorTreeCost;
use lfsr::{KeySequence, UnlockSchedule};

use crate::chip::ProtectedChip;
use crate::scheme::OrapProtected;

/// The paper's threat scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreatScenario {
    /// (a) Suppress the reset pulse locally in every LFSR cell, so the key
    /// survives `scan_enable` and *shifts out on the scan pins*.
    SuppressPerCellReset,
    /// (b) Suppress `scan_enable` for the whole LFSR (cells hold the key,
    /// neither shifting nor resetting) and bypass them in the chains.
    HoldLfsrAndBypass,
    /// (c) Shadow register storing the key at unlock time, muxed into the
    /// key gates during testing.
    ShadowRegister,
    /// (d) XOR trees recomputing every key bit from shadow copies of the
    /// seeds (exploiting LFSR linearity).
    XorTrees,
    /// (e) Freeze the ordinary flip-flops through the unlock process to
    /// exploit the one correct scanned-out response.
    FreezeStateFfs,
}

impl ThreatScenario {
    /// All scenarios in paper order.
    pub const ALL: [ThreatScenario; 5] = [
        ThreatScenario::SuppressPerCellReset,
        ThreatScenario::HoldLfsrAndBypass,
        ThreatScenario::ShadowRegister,
        ThreatScenario::XorTrees,
        ThreatScenario::FreezeStateFfs,
    ];

    /// Paper label.
    pub fn label(self) -> &'static str {
        match self {
            ThreatScenario::SuppressPerCellReset => "(a) suppress per-cell reset",
            ThreatScenario::HoldLfsrAndBypass => "(b) hold LFSR + bypass scan",
            ThreatScenario::ShadowRegister => "(c) shadow key register",
            ThreatScenario::XorTrees => "(d) XOR-tree key recomputation",
            ThreatScenario::FreezeStateFfs => "(e) freeze state flip-flops",
        }
    }
}

/// Whether the design follows the paper's hardening guidelines (the final
/// OraP scheme) or a naive baseline (the strawman each guideline addresses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DesignPosture {
    /// Strawman: a single global reset / plain shift-register key register /
    /// LFSR cells appended at chain tails / basic (Fig. 1) scheme.
    Baseline,
    /// The published scheme: per-cell pulse generators, LFSR cells
    /// interleaved before ordinary flip-flops, seed-mixing LFSR, modified
    /// (Fig. 3) response reseeding.
    Hardened,
}

/// Gate-equivalent cost model (paper-consistent coarse counts: NAND2 = 1 GE,
/// 2-to-1 mux = 3 GE, flip-flop = 4 GE).
pub const GE_MUX: usize = 3;
/// Gate equivalents per flip-flop.
pub const GE_FF: usize = 4;

/// Trojan payload cost for a scenario against a given design posture.
///
/// Returns gate equivalents of the *payload* only (the trigger circuit is
/// common to every scenario and excluded, as in the paper).
pub fn payload_cost(
    protected: &OrapProtected,
    scenario: ThreatScenario,
    posture: DesignPosture,
) -> usize {
    let n = protected.key_bits();
    match scenario {
        // (a) Hardened: one pulse generator per cell -> NAND2→NAND3 in every
        // cell, ~0.5 NAND2-equivalent each (the paper: 128 cells ≈ 64 gates).
        ThreatScenario::SuppressPerCellReset => match posture {
            DesignPosture::Hardened => n.div_ceil(2),
            // Baseline strawman: one global reset line -> one gate.
            DesignPosture::Baseline => 1,
        },
        // (b) Hardened (cells interleaved before normal FFs): a bypass mux
        // per LFSR cell plus the single scan-enable gate.
        ThreatScenario::HoldLfsrAndBypass => match posture {
            DesignPosture::Hardened => n * GE_MUX + 1,
            // Baseline (cells at the chain tails, driving nothing): no
            // bypass muxes needed.
            DesignPosture::Baseline => 1,
        },
        // (c) Shadow register: n flip-flops + n muxes, independent of
        // posture (the countermeasure here is detection, not structure).
        ThreatScenario::ShadowRegister => n * GE_FF + n * GE_MUX,
        // (d) XOR trees: depends on the reseeding schedule complexity.
        ThreatScenario::XorTrees => {
            let cost = xor_tree_cost(protected, posture);
            cost.gate_equivalents()
        }
        // (e) A few gates to gate the state flip-flops' enable/reset.
        ThreatScenario::FreezeStateFfs => 4,
    }
}

/// XOR-tree cost (threat (d)) under the real schedule (hardened) or a
/// single-seed shift-register strawman (baseline).
pub fn xor_tree_cost(protected: &OrapProtected, posture: DesignPosture) -> XorTreeCost {
    match posture {
        DesignPosture::Hardened => {
            let seq = KeySequence::new(
                protected
                    .key_sequence
                    .iter()
                    .map(|w| expand_word(protected, w))
                    .collect(),
                vec![protected.free_run; protected.key_sequence.len()],
            );
            let schedule = UnlockSchedule::new(protected.lfsr.clone(), seq);
            XorTreeCost::of_schedule(&schedule)
        }
        DesignPosture::Baseline => lfsr::symbolic::shift_register_cost(
            protected.key_bits(),
            1, // single seed
            0,
            protected.key_bits() as u64,
        ),
    }
}

fn expand_word(protected: &OrapProtected, word: &[bool]) -> Vec<bool> {
    // Expand a memory word to the full reseed-point width (response points
    // carry variables too from the Trojan's perspective — it must tap them
    // as well, which only enlarges its payload; counting them as seed
    // variables is therefore conservative in the defender's favour... and
    // exact for the Basic variant).
    let mut full = vec![false; protected.lfsr.reseed_points.len()];
    for (&p, &b) in protected.memory_points.iter().zip(word) {
        full[p] = b;
    }
    full
}

/// Side-channel detection model for the paper's countermeasure argument:
/// a Trojan payload is detectable when its gate count is at least
/// `min_detectable_fraction` of the circuit segment it sits in (segmented
/// transition-fault side-channel testing per reference \[25\] of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SideChannelModel {
    /// Gates per analysed segment (the guideline "keep the LFSR cells in
    /// one segment" fixes this independently of total circuit size).
    pub segment_gates: usize,
    /// Minimum payload/segment fraction the measurement resolves.
    pub min_detectable_fraction: f64,
}

impl Default for SideChannelModel {
    fn default() -> Self {
        SideChannelModel {
            segment_gates: 2000,
            min_detectable_fraction: 0.01,
        }
    }
}

impl SideChannelModel {
    /// Whether a payload of `payload_ge` gate equivalents is detected.
    pub fn detects(&self, payload_ge: usize) -> bool {
        payload_ge as f64 >= self.segment_gates as f64 * self.min_detectable_fraction
    }
}

/// Arms a Trojan scenario on a chip model.
pub fn arm(chip: &mut ProtectedChip, scenario: ThreatScenario) {
    match scenario {
        ThreatScenario::SuppressPerCellReset => {
            chip.trojan.suppress_reset.iter_mut().for_each(|b| *b = true);
        }
        ThreatScenario::HoldLfsrAndBypass => {
            chip.trojan.hold_and_bypass_lfsr = true;
        }
        ThreatScenario::ShadowRegister => {
            chip.trojan.shadow_register = true;
        }
        ThreatScenario::XorTrees => {
            // Functionally equivalent to the shadow register from the chip
            // model's perspective (the key gets recomputed correctly); the
            // difference is the payload cost.
            chip.trojan.shadow_register = true;
        }
        ThreatScenario::FreezeStateFfs => {
            chip.trojan.freeze_state_ffs = true;
        }
    }
}

/// Threat (a) exploited: after unlocking, enter scan mode and shift the
/// whole image out; with resets suppressed, the key appears on the scan-out
/// pins. Returns the extracted key-register image.
pub fn extract_key_via_scan(chip: &mut ProtectedChip) -> Vec<bool> {
    chip.power_on_and_unlock();
    chip.set_scan_enable(true);
    let layout = chip.image_layout();
    let depth = layout.len(); // over-shift is fine
    let chains = chip.num_scan_chains();
    let mut image = vec![false; layout.len()];
    // Track per-chain positions as in scan_test's unload loop.
    let zeros = vec![false; chains];
    let pis = vec![false; chip.num_primary_inputs()];
    let per_chain_counts: Vec<usize> = (0..chains)
        .map(|ci| chip.chains().get(ci).map(|c| c.len()).unwrap_or(0))
        .collect();
    for cycle in 0..depth {
        let out = chip.clock(&pis, &zeros);
        let mut offset = 0;
        for (ci, &bit) in out.scan_out.iter().enumerate() {
            let count = per_chain_counts[ci];
            if let Some(p) = count.checked_sub(1 + cycle) {
                image[offset + p] = bit;
            }
            offset += count;
        }
    }
    chip.set_scan_enable(false);
    // Pull the key cells out of the image in key order.
    let mut key = vec![false; chip.design().key_bits()];
    for (k, cell) in layout.iter().enumerate() {
        if let crate::chip::ChainCell::Key(i) = cell {
            key[*i] = image[k];
        }
    }
    key
}

/// Threat (e) exploited: scan a chosen state in, let the chip unlock with
/// the state flip-flops frozen, run one functional capture, scan the
/// response out. Returns `(primary_outputs, captured_state)` — correct for
/// the Basic scheme, garbage for the Modified scheme (whose unlock needed
/// the live responses).
pub fn one_shot_query_with_frozen_ffs(
    chip: &mut ProtectedChip,
    state: &[bool],
    pis: &[bool],
) -> (Vec<bool>, Vec<bool>) {
    assert!(
        chip.trojan.freeze_state_ffs,
        "arm(FreezeStateFfs) before exploiting it"
    );
    // Load the desired state. (In hardware this is a scan load — which
    // clears the key register, but the unlock process rebuilds it anyway;
    // the model sets the flip-flops directly since the Trojan holds them.)
    chip.set_scan_enable(false);
    chip.set_state_ffs(state);
    // The Trojan lets the unlock controller run while the FFs hold.
    chip.power_on_and_unlock();
    // One functional cycle to capture the response on the attacker's state.
    chip.set_state_ffs(state); // FFs were frozen; still the attacker's value
    let res = {
        let chains = chip.num_scan_chains();
        chip.set_scan_enable(false);
        chip.clock(pis, &vec![false; chains])
    };
    // Scan the captured state out (clears the key register again — the
    // attacker no longer needs it).
    let captured = {
        let state_now = chip.state_ffs().to_vec();
        state_now
    };
    (res.outputs, captured)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::{OracleMode, ProtectedChip, ProtectedChipOracle};
    use crate::scheme::{protect, OrapConfig, OrapVariant};
    use locking::weighted::WllConfig;
    use netlist::samples;

    fn protected(variant: OrapVariant) -> OrapProtected {
        let design = samples::counter(10);
        protect(
            &design,
            &WllConfig {
                key_bits: 8,
                control_width: 3,
                seed: 7,
            },
            &OrapConfig {
                variant,
                ..OrapConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn honest_chip_does_not_leak_key_via_scan() {
        let p = protected(OrapVariant::Basic);
        let mut chip = ProtectedChip::new(&p).unwrap();
        let key = extract_key_via_scan(&mut chip);
        assert_ne!(key, p.locked.correct_key, "honest chip must not leak");
        assert!(key.iter().all(|&b| !b), "cleared register scans out zeros");
    }

    #[test]
    fn threat_a_leaks_key_when_unprotected() {
        let p = protected(OrapVariant::Basic);
        let mut chip = ProtectedChip::new(&p).unwrap();
        arm(&mut chip, ThreatScenario::SuppressPerCellReset);
        let key = extract_key_via_scan(&mut chip);
        assert_eq!(key, p.locked.correct_key, "suppressed resets leak the key");
    }

    #[test]
    fn threat_a_payload_grows_with_key_width() {
        let p = protected(OrapVariant::Basic);
        let hardened = payload_cost(&p, ThreatScenario::SuppressPerCellReset, DesignPosture::Hardened);
        let baseline = payload_cost(&p, ThreatScenario::SuppressPerCellReset, DesignPosture::Baseline);
        assert_eq!(hardened, 4); // 8-bit key -> ~n/2
        assert_eq!(baseline, 1);
        assert!(hardened > baseline);
    }

    #[test]
    fn threat_b_enables_oracle_but_costs_muxes() {
        let p = protected(OrapVariant::Basic);
        let mut chip = ProtectedChip::new(&p).unwrap();
        arm(&mut chip, ThreatScenario::HoldLfsrAndBypass);
        let mut oracle = ProtectedChipOracle::new(chip, OracleMode::Naive);
        // With the LFSR held (key intact through scan), responses are now
        // CORRECT — the oracle is resurrected.
        let mut rng = netlist::rng::SplitMix64::new(5);
        let n = 1 + 10;
        for _ in 0..12 {
            let input: Vec<bool> = (0..n).map(|_| rng.bool()).collect();
            assert!(
                oracle.response_is_correct(&input).unwrap(),
                "held key register must yield correct responses"
            );
        }
        let hardened = payload_cost(&p, ThreatScenario::HoldLfsrAndBypass, DesignPosture::Hardened);
        let a_cost = payload_cost(&p, ThreatScenario::SuppressPerCellReset, DesignPosture::Hardened);
        assert!(
            hardened > a_cost,
            "the interleaving guideline makes (b) costlier than (a)"
        );
    }

    #[test]
    fn threat_c_shadow_register_resurrects_oracle_at_high_cost() {
        let p = protected(OrapVariant::Basic);
        let mut chip = ProtectedChip::new(&p).unwrap();
        arm(&mut chip, ThreatScenario::ShadowRegister);
        let mut oracle = ProtectedChipOracle::new(chip, OracleMode::Naive);
        let mut rng = netlist::rng::SplitMix64::new(6);
        let n = 1 + 10;
        for _ in 0..12 {
            let input: Vec<bool> = (0..n).map(|_| rng.bool()).collect();
            assert!(oracle.response_is_correct(&input).unwrap());
        }
        let cost = payload_cost(&p, ThreatScenario::ShadowRegister, DesignPosture::Hardened);
        assert_eq!(cost, 8 * (GE_FF + GE_MUX));
    }

    #[test]
    fn threat_d_xor_trees_cost_scales_with_schedule() {
        let p = protected(OrapVariant::Basic);
        let hardened = xor_tree_cost(&p, DesignPosture::Hardened);
        let baseline = xor_tree_cost(&p, DesignPosture::Baseline);
        assert!(
            hardened.gate_equivalents() > baseline.gate_equivalents(),
            "LFSR mixing ({}) must beat the shift-register strawman ({})",
            hardened.gate_equivalents(),
            baseline.gate_equivalents()
        );
    }

    #[test]
    fn threat_e_works_on_basic_fails_on_modified() {
        let mut rng = netlist::rng::SplitMix64::new(8);
        let state: Vec<bool> = (0..10).map(|_| rng.bool()).collect();
        let pis = vec![true];

        // Basic scheme: the frozen-FF attack captures a CORRECT response.
        let p_basic = protected(OrapVariant::Basic);
        let mut chip = ProtectedChip::new(&p_basic).unwrap();
        arm(&mut chip, ThreatScenario::FreezeStateFfs);
        let (_, captured) = one_shot_query_with_frozen_ffs(&mut chip, &state, &pis);
        // Reference: one step of the true circuit from `state`.
        let design = samples::counter(10);
        let mut reference = gatesim::SeqSim::new(&design).unwrap();
        reference.set_state(&state);
        reference.step(&pis);
        assert_eq!(
            captured,
            reference.state(),
            "basic scheme falls to the frozen-FF one-shot query"
        );

        // Modified scheme: the same Trojan breaks the unlock itself.
        let p_mod = protected(OrapVariant::Modified);
        let mut chip = ProtectedChip::new(&p_mod).unwrap();
        arm(&mut chip, ThreatScenario::FreezeStateFfs);
        chip.power_on_and_unlock();
        assert!(
            !chip.key_register_holds_correct_key(),
            "modified scheme: frozen responses must corrupt the key"
        );
        let (_, captured) = {
            let mut chip2 = ProtectedChip::new(&p_mod).unwrap();
            arm(&mut chip2, ThreatScenario::FreezeStateFfs);
            one_shot_query_with_frozen_ffs(&mut chip2, &state, &pis)
        };
        assert_ne!(
            captured,
            reference.state(),
            "modified scheme must deny the correct response"
        );
    }

    #[test]
    fn side_channel_model_thresholds() {
        let m = SideChannelModel {
            segment_gates: 2000,
            min_detectable_fraction: 0.01,
        };
        assert!(!m.detects(10));
        assert!(m.detects(20));
        assert!(m.detects(500));
    }

    #[test]
    fn scenario_labels() {
        for s in ThreatScenario::ALL {
            assert!(!s.label().is_empty());
        }
    }
}
