//! The daemon: TCP accept loop, connection handlers, op dispatch.
//!
//! Architecture: one listener thread polls a non-blocking accept loop
//! (~20 ms); each connection gets a handler thread that parses frames and
//! dispatches ops; `submit` enqueues onto the shared [`JobQueue`], whose
//! worker pool (built on [`exec::Pool`]) runs the job adapters in
//! [`crate::jobs`]. All expensive state flows through the two
//! content-hashed caches in [`ServeState`], so concurrent sessions on the
//! same circuit share one compiled artifact.

use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use orap_bench::json::{Json, ToJson};
use orap_bench::json_object;

use crate::jobs::{self, JobSpec, ServeState};
use crate::proto::{self, code, FrameRead};
use crate::queue::{JobQueue, JobStatus, Priority};

/// Protocol version reported by `ping`.
pub const PROTOCOL_VERSION: u64 = 1;
/// Server identity string reported by `ping`.
pub const SERVER_NAME: &str = "orap-serve/0.1.0";

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (read it back from
    /// [`ServerHandle::port`]).
    pub addr: String,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Circuit-cache capacity (ready entries; 0 = unbounded).
    pub circuit_cache: usize,
    /// Locked-artifact cache capacity (0 = unbounded).
    pub locked_cache: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            circuit_cache: 0,
            locked_cache: 0,
        }
    }
}

struct Shared {
    state: ServeState,
    queue: Arc<JobQueue<JobSpec, Json>>,
    stop_accept: AtomicBool,
}

/// Handle to a running daemon: its bound port and shutdown control.
pub struct ServerHandle {
    port: u16,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    worker_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound TCP port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Requests shutdown. With `drain`, queued jobs still run to
    /// completion; without, queued jobs are cancelled and running jobs are
    /// interrupted at their next checkpoint. Either way new submissions are
    /// rejected with code 300.
    pub fn begin_shutdown(&self, drain: bool) {
        self.shared.queue.shutdown(drain);
        self.shared.stop_accept.store(true, Ordering::Release);
    }

    /// Blocks until the accept loop and worker pool have exited. Call
    /// [`Self::begin_shutdown`] (or send the `shutdown` op) first.
    pub fn wait(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.worker_thread.take() {
            let _ = t.join();
        }
    }

    /// Immediate shutdown (no drain) + wait. Idempotent.
    pub fn stop(&mut self) {
        self.begin_shutdown(false);
        self.wait();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The daemon entry point.
pub struct Server;

impl Server {
    /// Binds, spawns the worker pool and the accept loop, and returns.
    ///
    /// # Errors
    ///
    /// Returns the bind error as a string.
    pub fn start(config: ServerConfig) -> Result<ServerHandle, String> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| format!("bind {}: {e}", config.addr))?;
        let port = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?
            .port();
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;

        let shared = Arc::new(Shared {
            state: ServeState::new(config.circuit_cache, config.locked_cache),
            queue: JobQueue::new(config.workers.max(1)),
            stop_accept: AtomicBool::new(false),
        });

        let worker_thread = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let queue = Arc::clone(&shared.queue);
                queue.run(move |ctx, spec: &JobSpec| {
                    jobs::run_job(&shared.state, ctx, spec)
                });
            })
        };

        let accept_thread = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };

        Ok(ServerHandle {
            port,
            shared,
            accept_thread: Some(accept_thread),
            worker_thread: Some(worker_thread),
        })
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.stop_accept.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(shared);
                handlers.push(std::thread::spawn(move || {
                    handle_connection(stream, &shared);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
        handlers.retain(|h| !h.is_finished());
    }
    // Join handlers that already finished; detach the rest — they exit on
    // their client's EOF, and joining here would block shutdown on a
    // client that keeps its connection open.
    for h in handlers {
        if h.is_finished() {
            let _ = h.join();
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    loop {
        let frame = match proto::read_frame(&mut stream) {
            Ok(FrameRead::Payload(p)) => p,
            Ok(FrameRead::Eof) => return,
            Ok(FrameRead::Malformed(why)) => {
                let resp = proto::err_response(0, code::BAD_FRAME, why);
                let _ = stream.write_all(&proto::encode(&resp));
                return;
            }
            Err(_) => return,
        };
        match handle_payload(&frame, shared) {
            Action::Respond(response, close) => {
                if stream.write_all(&proto::encode(&response)).is_err() {
                    return;
                }
                if close {
                    return;
                }
            }
            Action::Subscribe { id, msg } => {
                // The one multi-frame op: pushes event frames until the
                // job's progress log closes, then a final `done` frame —
                // after which the connection returns to request/response.
                if !op_subscribe(&mut stream, id, &msg, shared) {
                    return;
                }
            }
        }
    }
}

/// What the connection loop should do with one parsed request.
enum Action {
    /// Write one response frame; close the connection if the flag is set.
    Respond(Json, bool),
    /// Enter the multi-frame `subscribe` push loop.
    Subscribe {
        /// Request id echoed on every pushed frame.
        id: u64,
        /// The full request (for `job_id` / `from`).
        msg: Json,
    },
}

/// Parses one request payload and decides how the connection proceeds.
fn handle_payload(payload: &[u8], shared: &Arc<Shared>) -> Action {
    let text = match std::str::from_utf8(payload) {
        Ok(t) => t,
        Err(_) => {
            return Action::Respond(
                proto::err_response(0, code::BAD_JSON, "payload is not UTF-8"),
                true,
            )
        }
    };
    let msg = match orap_bench::json::parse(text) {
        Ok(m) => m,
        Err(e) => {
            return Action::Respond(
                proto::err_response(0, code::BAD_JSON, &format!("bad json: {e}")),
                true,
            )
        }
    };
    let id = proto::get_u64(&msg, "id").unwrap_or(0);
    let Some(op) = proto::get_str(&msg, "op") else {
        return Action::Respond(
            proto::err_response(id, code::BAD_REQUEST, "op must be a string"),
            false,
        );
    };
    let resp = match op {
        "ping" => proto::ok_response(
            id,
            vec![
                ("protocol".to_string(), PROTOCOL_VERSION.to_json()),
                ("server".to_string(), SERVER_NAME.to_json()),
            ],
        ),
        "submit" => op_submit(id, &msg, shared),
        "status" => op_status(id, &msg, shared, false),
        "result" => op_status(id, &msg, shared, true),
        "cancel" => op_cancel(id, &msg, shared),
        "subscribe" => return Action::Subscribe { id, msg },
        "stats" => op_stats(id, shared),
        "shutdown" => {
            let drain = proto::get(&msg, "drain")
                .and_then(proto::as_bool)
                .unwrap_or(true);
            shared.queue.shutdown(drain);
            shared.stop_accept.store(true, Ordering::Release);
            return Action::Respond(
                proto::ok_response(id, vec![("draining".to_string(), drain.to_json())]),
                true,
            );
        }
        other => proto::err_response(id, code::UNKNOWN_OP, &format!("unknown op: {other}")),
    };
    Action::Respond(resp, false)
}

/// The `subscribe` op: streams progress-event frames for one job from a
/// client-supplied cursor until the log closes, then writes a final frame
/// carrying the job's terminal state. Returns `false` when the connection
/// should close (write failure); protocol errors are single frames and
/// leave the connection open.
fn op_subscribe(stream: &mut TcpStream, id: u64, msg: &Json, shared: &Arc<Shared>) -> bool {
    let Some(job_id) = proto::get_u64(msg, "job_id") else {
        let resp = proto::err_response(id, code::BAD_REQUEST, "job_id must be a number");
        return stream.write_all(&proto::encode(&resp)).is_ok();
    };
    let from = proto::get_u64(msg, "from").unwrap_or(0);
    let Some(log) = shared.queue.progress(job_id) else {
        let resp = proto::err_response(id, code::UNKNOWN_JOB, &format!("unknown job: {job_id}"));
        return stream.write_all(&proto::encode(&resp)).is_ok();
    };
    let mut cursor = from;
    loop {
        let batch = log.wait_events(cursor, 256, Duration::from_secs(600));
        if batch.closed && batch.next_cursor < from {
            // The stream ended before the requested cursor: client bug.
            let resp = proto::err_response(
                id,
                code::BAD_CURSOR,
                &format!(
                    "cursor {from} past the end of the closed stream ({} events)",
                    batch.next_cursor
                ),
            );
            return stream.write_all(&proto::encode(&resp)).is_ok();
        }
        for (i, ev) in batch.events.iter().enumerate() {
            let event = orap_bench::json::parse(ev)
                .unwrap_or_else(|_| Json::Str(ev.clone()));
            let frame = proto::ok_response(
                id,
                vec![
                    ("job_id".to_string(), job_id.to_json()),
                    ("seq".to_string(), (cursor + i as u64).to_json()),
                    ("event".to_string(), event),
                ],
            );
            if stream.write_all(&proto::encode(&frame)).is_err() {
                return false;
            }
        }
        cursor = batch.next_cursor;
        if batch.closed {
            let state = shared
                .queue
                .status(job_id)
                .map_or("?", |s| s.state.as_str());
            let frame = proto::ok_response(
                id,
                vec![
                    ("job_id".to_string(), job_id.to_json()),
                    ("done".to_string(), true.to_json()),
                    ("state".to_string(), state.to_json()),
                    ("events".to_string(), cursor.to_json()),
                    ("dropped".to_string(), batch.dropped.to_json()),
                ],
            );
            return stream.write_all(&proto::encode(&frame)).is_ok();
        }
    }
}

fn op_submit(id: u64, msg: &Json, shared: &Arc<Shared>) -> Json {
    let Some(job) = proto::get(msg, "job") else {
        return proto::err_response(id, code::BAD_REQUEST, "job must be an object");
    };
    let spec = match JobSpec::parse(job) {
        Ok(s) => s,
        Err(e) => return proto::err_response(id, code::BAD_REQUEST, &e),
    };
    let priority = match proto::get_str(msg, "priority") {
        None => Priority::Normal,
        Some(p) => match Priority::from_wire(p) {
            Some(p) => p,
            None => {
                return proto::err_response(
                    id,
                    code::BAD_REQUEST,
                    &format!("unknown priority: {p}"),
                )
            }
        },
    };
    let timeout = proto::get_u64(msg, "timeout_ms").map(Duration::from_millis);
    let kind = spec.kind();
    match shared.queue.submit(kind, spec, priority, timeout) {
        Ok(job_id) => proto::ok_response(
            id,
            vec![
                ("job_id".to_string(), job_id.to_json()),
                ("kind".to_string(), kind.to_json()),
            ],
        ),
        Err(_) => proto::err_response(id, code::SHUTTING_DOWN, "daemon is shutting down"),
    }
}

/// `status` (full view, timings included) and `result` (blocking, timing
/// free — the byte-deterministic op the golden transcripts use).
fn op_status(id: u64, msg: &Json, shared: &Arc<Shared>, wait: bool) -> Json {
    let Some(job_id) = proto::get_u64(msg, "job_id") else {
        return proto::err_response(id, code::BAD_REQUEST, "job_id must be a number");
    };
    let status = if wait {
        let limit = proto::get_u64(msg, "wait_ms")
            .map_or(Duration::from_secs(600), Duration::from_millis);
        shared.queue.wait_terminal(job_id, limit)
    } else {
        shared.queue.status(job_id)
    };
    let Some(st) = status else {
        return proto::err_response(id, code::UNKNOWN_JOB, &format!("unknown job: {job_id}"));
    };
    let mut fields = vec![
        ("job_id".to_string(), st.id.to_json()),
        ("kind".to_string(), st.kind.to_json()),
        ("state".to_string(), st.state.as_str().to_json()),
    ];
    if wait {
        append_outcome(&mut fields, &st);
    } else {
        fields.push(("priority".to_string(), st.priority.as_str().to_json()));
        fields.push(("stage".to_string(), st.stage.to_json()));
        let stages = Json::Array(
            st.stages
                .iter()
                .map(|(name, ns)| json_object! { stage: name, wall_ns: *ns })
                .collect(),
        );
        fields.push(("stages".to_string(), stages));
        fields.push(("queued_ns".to_string(), st.queued_ns.to_json()));
        fields.push(("run_ns".to_string(), st.run_ns.to_json()));
        append_outcome(&mut fields, &st);
    }
    proto::ok_response(id, fields)
}

/// Appends `result` / `error` fields shared by `status` and `result`.
fn append_outcome(fields: &mut Vec<(String, Json)>, st: &JobStatus<Json>) {
    if let Some(r) = &st.result {
        fields.push(("result".to_string(), r.clone()));
    }
    if let Some(e) = &st.error {
        fields.push(("error".to_string(), Json::Str(e.clone())));
    }
}

fn op_cancel(id: u64, msg: &Json, shared: &Arc<Shared>) -> Json {
    let Some(job_id) = proto::get_u64(msg, "job_id") else {
        return proto::err_response(id, code::BAD_REQUEST, "job_id must be a number");
    };
    match shared.queue.cancel(job_id) {
        Some(state) => proto::ok_response(
            id,
            vec![
                ("job_id".to_string(), job_id.to_json()),
                ("state".to_string(), state.as_str().to_json()),
            ],
        ),
        None => proto::err_response(id, code::UNKNOWN_JOB, &format!("unknown job: {job_id}")),
    }
}

fn op_stats(id: u64, shared: &Arc<Shared>) -> Json {
    let q = shared.queue.stats();
    let queue = json_object! {
        workers: q.workers,
        depth_high: q.depth[0],
        depth_normal: q.depth[1],
        depth_low: q.depth[2],
        depth_total: q.depth[0] + q.depth[1] + q.depth[2],
        running: q.running,
        submitted: q.submitted,
        completed: q.completed,
        failed: q.failed,
        cancelled: q.cancelled,
        timed_out: q.timed_out,
        busy_ns: q.busy_ns,
        queue_wait_ns: q.queue_wait_ns,
    };
    proto::ok_response(
        id,
        vec![
            ("queue".to_string(), queue),
            (
                "circuit_cache".to_string(),
                cache_json(&shared.state.circuits.stats()),
            ),
            (
                "locked_cache".to_string(),
                cache_json(&shared.state.locked.stats()),
            ),
        ],
    )
}

/// JSON shape of [`crate::cache::CacheStats`] (also embedded in the load
/// harness results).
pub fn cache_json(s: &crate::cache::CacheStats) -> Json {
    json_object! {
        entries: s.entries,
        capacity: s.capacity,
        hits: s.hits,
        builds: s.builds,
        coalesced: s.coalesced,
        evictions: s.evictions,
        build_errors: s.build_errors,
        build_ns: s.build_ns,
    }
}
