//! Content-hashed artifact cache with single-flight builds.
//!
//! The daemon keeps two of these: compiled source circuits (keyed by the
//! hash of their canonical `.bench` text) and locked artifacts (keyed by
//! the hash of `(source, scheme, key bits, seed)`). Both hold their
//! expensive state behind `Arc`, so every concurrent job shares one
//! [`netlist::CompiledCircuit`] per distinct circuit — the property PR 4's
//! stateless consumer views were built for.
//!
//! Concurrency contract (the "thundering herd" rule): when N requests race
//! on the same absent key, exactly one runs the builder; the other N−1
//! block on a condition variable and are counted as `coalesced`. Eviction
//! is LRU over *ready* entries once `capacity` is exceeded; in-flight
//! builds are never evicted.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Counter snapshot of one cache (exported via the `stats` op and the
/// bench JSON; see EXPERIMENTS.md "Serving").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Ready entries currently resident.
    pub entries: usize,
    /// Configured capacity (ready entries; 0 = unbounded).
    pub capacity: usize,
    /// Lookups answered from a resident entry.
    pub hits: u64,
    /// Lookups that ran the builder (== number of builds started).
    pub builds: u64,
    /// Lookups that waited on another request's in-flight build instead of
    /// building themselves — the deduplicated compiles.
    pub coalesced: u64,
    /// Ready entries evicted to stay within capacity.
    pub evictions: u64,
    /// Builds whose builder returned an error (not cached).
    pub build_errors: u64,
    /// Total nanoseconds spent inside builders.
    pub build_ns: u64,
}

enum Slot<T> {
    Ready { value: Arc<T>, last_use: u64 },
    Building,
}

struct Inner<T> {
    map: HashMap<String, Slot<T>>,
    tick: u64,
    stats: CacheStats,
}

/// A bounded, content-addressed store of shared artifacts.
pub struct ArtifactCache<T> {
    inner: Mutex<Inner<T>>,
    built: Condvar,
    capacity: usize,
}

impl<T> ArtifactCache<T> {
    /// Creates a cache evicting LRU once more than `capacity` ready entries
    /// are resident (`0` = unbounded).
    pub fn new(capacity: usize) -> Self {
        ArtifactCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                stats: CacheStats {
                    capacity,
                    ..CacheStats::default()
                },
            }),
            built: Condvar::new(),
            capacity,
        }
    }

    /// Returns the artifact under `key`, running `build` if it is absent.
    ///
    /// Exactly one concurrent caller per key runs `build`; the rest block
    /// until it finishes and share the result. A failed build is not
    /// cached: the error is returned to the building caller, and blocked
    /// callers retry (the next one becomes the builder).
    ///
    /// # Errors
    ///
    /// Propagates the builder's error string.
    pub fn get_or_build<F>(&self, key: &str, build: F) -> Result<Arc<T>, String>
    where
        F: FnOnce() -> Result<T, String>,
    {
        let mut guard = self.inner.lock().expect("cache lock");
        // Each lookup is counted exactly once: hit, coalesced, or build.
        let mut waited = false;
        loop {
            match guard.map.get(key) {
                Some(Slot::Ready { .. }) => {
                    guard.tick += 1;
                    if !waited {
                        guard.stats.hits += 1;
                    }
                    let tick = guard.tick;
                    let Some(Slot::Ready { value, last_use }) = guard.map.get_mut(key) else {
                        unreachable!("entry checked above");
                    };
                    *last_use = tick;
                    return Ok(Arc::clone(value));
                }
                Some(Slot::Building) => {
                    if !waited {
                        guard.stats.coalesced += 1;
                        waited = true;
                    }
                    guard = self.built.wait(guard).expect("cache lock");
                    // Loop: the entry is now Ready (share it), gone (the
                    // build failed — retry as builder), or Building again
                    // (another waiter already took over).
                }
                None => {
                    guard.map.insert(key.to_string(), Slot::Building);
                    guard.stats.builds += 1;
                    break;
                }
            }
        }
        drop(guard);

        let started = Instant::now();
        let outcome = build();
        let build_ns = started.elapsed().as_nanos() as u64;

        let mut guard = self.inner.lock().expect("cache lock");
        guard.stats.build_ns += build_ns;
        match outcome {
            Ok(value) => {
                let value = Arc::new(value);
                guard.tick += 1;
                let tick = guard.tick;
                guard.map.insert(
                    key.to_string(),
                    Slot::Ready {
                        value: Arc::clone(&value),
                        last_use: tick,
                    },
                );
                Self::evict_to_capacity(&mut guard, self.capacity, key);
                self.built.notify_all();
                Ok(value)
            }
            Err(e) => {
                guard.map.remove(key);
                guard.stats.build_errors += 1;
                self.built.notify_all();
                Err(e)
            }
        }
    }

    /// Returns the artifact under `key` if resident (a hit), without
    /// building or waiting. Misses are not counted.
    pub fn get(&self, key: &str) -> Option<Arc<T>> {
        let mut guard = self.inner.lock().expect("cache lock");
        guard.tick += 1;
        let tick = guard.tick;
        match guard.map.get_mut(key) {
            Some(Slot::Ready { value, last_use }) => {
                *last_use = tick;
                let out = Arc::clone(value);
                guard.stats.hits += 1;
                Some(out)
            }
            _ => None,
        }
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> CacheStats {
        let guard = self.inner.lock().expect("cache lock");
        let mut s = guard.stats.clone();
        s.entries = guard
            .map
            .values()
            .filter(|s| matches!(s, Slot::Ready { .. }))
            .count();
        s
    }

    /// Evicts least-recently-used ready entries (never `keep`, never
    /// in-flight builds) until at most `capacity` ready entries remain.
    fn evict_to_capacity(guard: &mut Inner<T>, capacity: usize, keep: &str) {
        if capacity == 0 {
            return;
        }
        loop {
            let ready = guard
                .map
                .iter()
                .filter(|(_, s)| matches!(s, Slot::Ready { .. }))
                .count();
            if ready <= capacity {
                return;
            }
            let victim = guard
                .map
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready { last_use, .. } if k != keep => Some((*last_use, k.clone())),
                    _ => None,
                })
                .min();
            match victim {
                Some((_, k)) => {
                    guard.map.remove(&k);
                    guard.stats.evictions += 1;
                }
                None => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn hit_after_build() {
        let cache: ArtifactCache<u32> = ArtifactCache::new(0);
        let a = cache.get_or_build("k", || Ok(41)).unwrap();
        let b = cache.get_or_build("k", || panic!("must not rebuild")).unwrap();
        assert_eq!((*a, *b), (41, 41));
        let s = cache.stats();
        assert_eq!((s.builds, s.hits, s.coalesced), (1, 1, 0));
    }

    #[test]
    fn concurrent_same_key_builds_exactly_once() {
        let cache: Arc<ArtifactCache<u64>> = Arc::new(ArtifactCache::new(0));
        let builds = Arc::new(AtomicUsize::new(0));
        const THREADS: usize = 16;
        let values: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    let builds = Arc::clone(&builds);
                    s.spawn(move || {
                        *cache
                            .get_or_build("same", || {
                                builds.fetch_add(1, Ordering::SeqCst);
                                // Hold the build open so the others pile up.
                                std::thread::sleep(Duration::from_millis(50));
                                Ok(7u64)
                            })
                            .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(values.iter().all(|&v| v == 7));
        assert_eq!(builds.load(Ordering::SeqCst), 1, "thundering herd");
        let s = cache.stats();
        assert_eq!(s.builds, 1);
        assert_eq!(s.coalesced as usize + s.hits as usize, THREADS - 1);
        assert!(s.coalesced >= 1, "some caller must have waited");
    }

    #[test]
    fn failed_build_is_not_cached_and_waiters_retry() {
        let cache: ArtifactCache<u32> = ArtifactCache::new(0);
        assert_eq!(
            cache.get_or_build("k", || Err("boom".to_string())),
            Err("boom".to_string())
        );
        assert_eq!(*cache.get_or_build("k", || Ok(5)).unwrap(), 5);
        let s = cache.stats();
        assert_eq!((s.builds, s.build_errors), (2, 1));
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let cache: ArtifactCache<u32> = ArtifactCache::new(2);
        cache.get_or_build("a", || Ok(1)).unwrap();
        cache.get_or_build("b", || Ok(2)).unwrap();
        cache.get("a"); // refresh "a": "b" becomes the LRU victim
        cache.get_or_build("c", || Ok(3)).unwrap();
        let s = cache.stats();
        assert_eq!((s.entries, s.evictions), (2, 1));
        assert!(cache.get("a").is_some());
        assert!(cache.get("b").is_none(), "LRU entry must be gone");
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn get_never_builds() {
        let cache: ArtifactCache<u32> = ArtifactCache::new(0);
        assert!(cache.get("missing").is_none());
        assert_eq!(cache.stats().builds, 0);
    }
}
