//! Load-test harness: replays concurrent lock→attack→verify sessions
//! against a live daemon and writes throughput + latency percentiles.
//!
//! ```text
//! serve_load --addr HOST:PORT [--sessions N] [--clients N] [--smoke]
//!            [--shutdown] [--out NAME]
//! ```
//!
//! Each session locks one of a small set of circuits, runs an exact
//! oracle-guided attack (SAT, with a double-DIP leg every eighth session)
//! against the daemon-held oracle, and verifies the recovered key exactly
//! — the full oracle-access path the paper's threat model centres on. The
//! harness asserts zero failed sessions, that every attack result carries
//! a truthful `oracle_queries` ledger, and that the daemon compiled each
//! distinct circuit and built each distinct locked artifact exactly once
//! (cache dedup — asserted from the `stats` op, no log scraping), then
//! writes `results/<NAME>.json` (default `BENCH_serve`,
//! `BENCH_serve_smoke` under `--smoke`). Field definitions:
//! EXPERIMENTS.md "Serving".

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use orap_bench::json::Json;
use orap_bench::json_object;
use orap_bench::timing::LatencySummary;
use serve::client::Client;
use serve::proto;

/// Full-scale session count (the acceptance floor is ≥1000).
const FULL_SESSIONS: usize = 1024;
/// Smoke-scale session count (the `ci.sh` tier-1 stage).
const SMOKE_SESSIONS: usize = 48;

fn usage() -> ! {
    eprintln!(
        "usage: serve_load --addr HOST:PORT [--sessions N] [--clients N] \
         [--smoke] [--shutdown] [--out NAME]"
    );
    std::process::exit(2);
}

/// The distinct circuits sessions cycle through; the dedup assertion is
/// `circuit_cache.builds <= VARIANTS`.
const VARIANTS: usize = 4;

fn variant_bench(v: usize) -> String {
    match v {
        0 => netlist::bench::write(&netlist::samples::c17()),
        1 => netlist::bench::write(&netlist::samples::ripple_adder(4)),
        2 => netlist::bench::write(
            &netlist::generate::random_comb(11, 8, 4, 60).expect("generator"),
        ),
        _ => netlist::bench::write(
            &netlist::generate::random_comb(23, 10, 5, 90).expect("generator"),
        ),
    }
}

/// Client-side wall-clock samples, one vector per job kind plus sessions,
/// and the summed oracle-query ledger across all attack results.
#[derive(Default)]
struct Samples {
    lock_ns: Vec<u64>,
    attack_ns: Vec<u64>,
    verify_ns: Vec<u64>,
    session_ns: Vec<u64>,
    oracle_queries: u64,
}

/// Runs one full session; returns per-stage latencies or a description of
/// what failed.
fn run_session(client: &mut Client, session: usize) -> Result<Samples, String> {
    let variant = session % VARIANTS;
    let bench = variant_bench(variant);
    let mut out = Samples::default();
    let session_start = Instant::now();

    // Lock: same (circuit, scheme, key_bits, seed) per variant, so the
    // daemon's locked cache dedups across sessions.
    let t = Instant::now();
    let job = client
        .submit_lock(&bench, "rll", 4 + variant, 7)
        .map_err(|e| format!("submit lock: {e}"))?;
    let done = client.wait_result(job).map_err(|e| format!("lock: {e}"))?;
    out.lock_ns.push(t.elapsed().as_nanos() as u64);
    expect_state(&done, "done", "lock")?;
    let result = proto::get(&done, "result").ok_or("lock result missing")?;
    let artifact = proto::get_str(result, "artifact")
        .ok_or("lock artifact missing")?
        .to_string();

    // Attack: a fresh exact attack per session against the daemon-held
    // oracle — SAT by default, double-DIP on every eighth session so the
    // load path exercises more than one engine behind the same telemetry.
    let attack = if session % 8 == 3 { "double_dip" } else { "sat" };
    let t = Instant::now();
    let job = client
        .submit_attack(&artifact, attack)
        .map_err(|e| format!("submit {attack}: {e}"))?;
    let done = client
        .wait_result(job)
        .map_err(|e| format!("{attack}: {e}"))?;
    out.attack_ns.push(t.elapsed().as_nanos() as u64);
    expect_state(&done, "done", attack)?;
    let result = proto::get(&done, "result").ok_or("attack result missing")?;
    if proto::get(result, "succeeded").and_then(proto::as_bool) != Some(true) {
        return Err(format!("{attack} did not succeed: {}", result.compact()));
    }
    // Every attack result must carry the oracle-query ledger, and an
    // exact attack that succeeded cannot have done so without querying.
    let queries = proto::get_u64(result, "oracle_queries")
        .ok_or_else(|| format!("{attack} result lacks oracle_queries: {}", result.compact()))?;
    if queries == 0 {
        return Err(format!("{attack} reported zero oracle queries"));
    }
    out.oracle_queries += queries;
    let key = proto::get_str(result, "key")
        .ok_or("attack key missing")?
        .to_string();

    // Verify: the recovered key must be exactly correct.
    let t = Instant::now();
    let job = client
        .submit_verify(&artifact, &key)
        .map_err(|e| format!("submit verify: {e}"))?;
    let done = client.wait_result(job).map_err(|e| format!("verify: {e}"))?;
    out.verify_ns.push(t.elapsed().as_nanos() as u64);
    expect_state(&done, "done", "verify")?;
    let result = proto::get(&done, "result").ok_or("verify result missing")?;
    if proto::get(result, "exact").and_then(proto::as_bool) != Some(true) {
        return Err(format!("recovered key not exact: {}", result.compact()));
    }

    out.session_ns.push(session_start.elapsed().as_nanos() as u64);
    Ok(out)
}

fn expect_state(resp: &Json, want: &str, what: &str) -> Result<(), String> {
    let state = proto::get_str(resp, "state").unwrap_or("?");
    if state == want {
        Ok(())
    } else {
        Err(format!("{what} ended {state}: {}", resp.compact()))
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr: Option<String> = None;
    let mut sessions: Option<usize> = None;
    let mut clients: usize = 8;
    let mut smoke = false;
    let mut send_shutdown = false;
    let mut out_name: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| args.get(i + 1).cloned().unwrap_or_else(|| usage());
        match args[i].as_str() {
            "--addr" => {
                addr = Some(need(i));
                i += 2;
            }
            "--sessions" => {
                sessions = Some(need(i).parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "--clients" => {
                clients = need(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--shutdown" => {
                send_shutdown = true;
                i += 1;
            }
            "--out" => {
                out_name = Some(need(i));
                i += 2;
            }
            _ => usage(),
        }
    }
    let addr = addr.unwrap_or_else(|| usage());
    let sessions = sessions.unwrap_or(if smoke { SMOKE_SESSIONS } else { FULL_SESSIONS });
    let clients = clients.max(1).min(sessions.max(1));
    let out_name = out_name.unwrap_or_else(|| {
        if smoke {
            "BENCH_serve_smoke".to_string()
        } else {
            "BENCH_serve".to_string()
        }
    });

    eprintln!(
        "serve_load: {sessions} sessions over {clients} client connections against {addr}"
    );

    let next = AtomicUsize::new(0);
    let merged = Mutex::new(Samples::default());
    let failures = Mutex::new(Vec::<String>::new());
    let wall_start = Instant::now();

    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| {
                let mut client = match Client::connect(&addr) {
                    Ok(c) => c,
                    Err(e) => {
                        failures.lock().unwrap().push(format!("connect: {e}"));
                        return;
                    }
                };
                loop {
                    let session = next.fetch_add(1, Ordering::Relaxed);
                    if session >= sessions {
                        return;
                    }
                    match run_session(&mut client, session) {
                        Ok(s) => {
                            let mut m = merged.lock().unwrap();
                            m.lock_ns.extend(s.lock_ns);
                            m.attack_ns.extend(s.attack_ns);
                            m.verify_ns.extend(s.verify_ns);
                            m.session_ns.extend(s.session_ns);
                            m.oracle_queries += s.oracle_queries;
                        }
                        Err(e) => failures
                            .lock()
                            .unwrap()
                            .push(format!("session {session}: {e}")),
                    }
                }
            });
        }
    });
    let wall_ns = wall_start.elapsed().as_nanos() as u64;

    // Server-side counters, then optionally shut the daemon down.
    let server_stats = (|| -> Result<Json, String> {
        let mut c = Client::connect(&addr).map_err(|e| format!("connect: {e}"))?;
        let stats = c.stats().map_err(|e| format!("stats: {e}"))?;
        if send_shutdown {
            c.shutdown(true).map_err(|e| format!("shutdown: {e}"))?;
        }
        Ok(stats)
    })()
    .unwrap_or_else(|e| {
        eprintln!("serve_load: post-run {e}");
        std::process::exit(1);
    });

    let fails = failures.into_inner().unwrap();
    for f in fails.iter().take(10) {
        eprintln!("serve_load: FAILED {f}");
    }

    let mut m = merged.into_inner().unwrap();
    let completed = m.session_ns.len();
    let report = json_object! {
        mode: if smoke { "smoke" } else { "full" },
        sessions: sessions,
        clients: clients,
        completed: completed,
        failed: fails.len(),
        wall_ns: wall_ns,
        sessions_per_sec: completed as f64 / (wall_ns as f64 / 1e9),
        oracle_queries_total: m.oracle_queries,
        lock: LatencySummary::from_samples(&mut m.lock_ns),
        attack: LatencySummary::from_samples(&mut m.attack_ns),
        verify: LatencySummary::from_samples(&mut m.verify_ns),
        session: LatencySummary::from_samples(&mut m.session_ns),
        server: server_stats,
    };
    match orap_bench::write_results(&out_name, &report) {
        Ok(path) => eprintln!("serve_load: wrote {}", path.display()),
        Err(e) => {
            eprintln!("serve_load: write results: {e}");
            std::process::exit(1);
        }
    }

    if !fails.is_empty() {
        eprintln!("serve_load: {} of {sessions} sessions failed", fails.len());
        std::process::exit(1);
    }

    // Dedup assertions straight from the `stats` op: every distinct
    // circuit compiled exactly once, every distinct locked artifact
    // built exactly once.
    let cache_builds = |name: &str| {
        proto::get(&server_stats, name)
            .and_then(|c| proto::get_u64(c, "builds"))
            .unwrap_or(u64::MAX)
    };
    let builds = cache_builds("circuit_cache");
    let locked_builds = cache_builds("locked_cache");
    let distinct = sessions.min(VARIANTS) as u64;
    if builds > distinct {
        eprintln!(
            "serve_load: cache failed to dedup: {builds} compiles for {distinct} distinct circuits"
        );
        std::process::exit(1);
    }
    if locked_builds > distinct {
        eprintln!(
            "serve_load: locked cache failed to dedup: {locked_builds} builds \
             for {distinct} distinct artifacts"
        );
        std::process::exit(1);
    }
    eprintln!(
        "serve_load: OK — {completed}/{sessions} sessions, {builds} compiles for \
         {distinct} circuits, {locked_builds} lock builds, {} oracle queries",
        m.oracle_queries
    );
}
