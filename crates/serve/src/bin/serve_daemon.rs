//! The locking-as-a-service daemon.
//!
//! ```text
//! serve_daemon [--port N] [--workers N] [--circuit-cache N]
//!              [--locked-cache N] [--announce FILE]
//! ```
//!
//! `--port 0` (the default) binds an ephemeral port; `--announce FILE`
//! writes the bound port to `FILE` once listening, which is how `ci.sh`
//! and the load harness find a freshly started daemon. The process exits
//! when a client sends the `shutdown` op.

use serve::server::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: serve_daemon [--port N] [--workers N] [--circuit-cache N] \
         [--locked-cache N] [--announce FILE]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut port: u16 = 0;
    let mut config = ServerConfig::default();
    let mut announce: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| args.get(i + 1).cloned().unwrap_or_else(|| usage());
        match args[i].as_str() {
            "--port" => {
                port = need(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--workers" => {
                config.workers = need(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--circuit-cache" => {
                config.circuit_cache = need(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--locked-cache" => {
                config.locked_cache = need(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--announce" => {
                announce = Some(need(i));
                i += 2;
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    config.addr = format!("127.0.0.1:{port}");
    let mut handle = match Server::start(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("serve_daemon: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("serve_daemon: listening on 127.0.0.1:{}", handle.port());
    if let Some(path) = announce {
        if let Err(e) = std::fs::write(&path, format!("{}\n", handle.port())) {
            eprintln!("serve_daemon: announce {path}: {e}");
            std::process::exit(1);
        }
    }
    // Blocks until a client issues the `shutdown` op.
    handle.wait();
    eprintln!("serve_daemon: shut down");
}
