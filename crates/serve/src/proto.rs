//! The wire format: `ORP1` frames carrying compact JSON.
//!
//! One frame is an 8-byte header — the 4-byte magic `ORP1` (`4f 52 50 31`)
//! and a big-endian `u32` payload length — followed by exactly that many
//! bytes of UTF-8 compact JSON (no whitespace; object field order is part
//! of the contract). Both directions use the same framing. The full
//! request/response schemas, error codes and golden transcripts live in
//! DESIGN.md §10; `tests/protocol_golden.rs` replays those transcripts
//! byte-for-byte against a live server so the document and this code
//! cannot drift.

use std::io::{self, Read, Write};

use orap_bench::json::{Json, ToJson};

/// Frame magic: ASCII `ORP1` (OraP protocol, version 1).
pub const MAGIC: [u8; 4] = *b"ORP1";

/// Hard frame-size cap (64 MiB); larger declared payloads are a protocol
/// error (code 100) and the connection is closed.
pub const MAX_FRAME: u32 = 64 << 20;

/// Protocol error codes (DESIGN.md §10.5).
pub mod code {
    /// Malformed frame: bad magic or oversize length. Connection closes.
    pub const BAD_FRAME: u64 = 100;
    /// Payload is not valid JSON. Connection closes.
    pub const BAD_JSON: u64 = 101;
    /// Request is well-formed JSON but violates a schema (missing/invalid
    /// field, bad job spec, bad priority, bad key string).
    pub const BAD_REQUEST: u64 = 102;
    /// Unknown `op`.
    pub const UNKNOWN_OP: u64 = 103;
    /// `job_id` does not name a job on this daemon.
    pub const UNKNOWN_JOB: u64 = 200;
    /// `subscribe.from` points past the end of a closed progress stream.
    pub const BAD_CURSOR: u64 = 201;
    /// Submission rejected because the daemon is shutting down.
    pub const SHUTTING_DOWN: u64 = 300;
}

/// Writes one frame containing `payload`.
///
/// # Errors
///
/// Propagates I/O errors from the underlying stream.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() as u64 <= MAX_FRAME as u64);
    w.write_all(&MAGIC)?;
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// What [`read_frame`] produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameRead {
    /// A complete payload.
    Payload(Vec<u8>),
    /// Clean end of stream at a frame boundary.
    Eof,
    /// Malformed header (bad magic or oversize length) — the peer must
    /// treat the stream as unusable.
    Malformed(&'static str),
}

/// Reads one frame.
///
/// # Errors
///
/// Propagates I/O errors, including truncation mid-frame
/// (`UnexpectedEof`).
pub fn read_frame(r: &mut impl Read) -> io::Result<FrameRead> {
    let mut header = [0u8; 8];
    // Distinguish clean EOF (no bytes) from a truncated header.
    let mut got = 0usize;
    while got < header.len() {
        let n = r.read(&mut header[got..])?;
        if n == 0 {
            if got == 0 {
                return Ok(FrameRead::Eof);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated frame header",
            ));
        }
        got += n;
    }
    if header[..4] != MAGIC {
        return Ok(FrameRead::Malformed("bad magic"));
    }
    let len = u32::from_be_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_FRAME {
        return Ok(FrameRead::Malformed("frame too large"));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(FrameRead::Payload(payload))
}

/// Serializes `msg` as one complete frame (header + compact JSON) — the
/// byte sequence the golden transcripts pin.
pub fn encode(msg: &Json) -> Vec<u8> {
    let payload = msg.compact().into_bytes();
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Builds the error-response JSON `{"id":…,"ok":false,"code":…,"error":…}`.
pub fn err_response(id: u64, code: u64, error: &str) -> Json {
    Json::Object(vec![
        ("id".to_string(), id.to_json()),
        ("ok".to_string(), false.to_json()),
        ("code".to_string(), code.to_json()),
        ("error".to_string(), error.to_json()),
    ])
}

/// Builds an ok-response JSON: `{"id":…,"ok":true, <fields>…}`.
pub fn ok_response(id: u64, fields: Vec<(String, Json)>) -> Json {
    let mut obj = vec![
        ("id".to_string(), id.to_json()),
        ("ok".to_string(), true.to_json()),
    ];
    obj.extend(fields);
    Json::Object(obj)
}

/// Looks up a field of a JSON object.
pub fn get<'a>(obj: &'a Json, key: &str) -> Option<&'a Json> {
    match obj {
        Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

/// Unsigned-integer view of a JSON value.
pub fn as_u64(v: &Json) -> Option<u64> {
    match v {
        Json::UInt(u) => Some(*u),
        _ => None,
    }
}

/// String view of a JSON value.
pub fn as_str(v: &Json) -> Option<&str> {
    match v {
        Json::Str(s) => Some(s),
        _ => None,
    }
}

/// Bool view of a JSON value.
pub fn as_bool(v: &Json) -> Option<bool> {
    match v {
        Json::Bool(b) => Some(*b),
        _ => None,
    }
}

/// `get` + `as_u64`.
pub fn get_u64(obj: &Json, key: &str) -> Option<u64> {
    get(obj, key).and_then(as_u64)
}

/// `get` + `as_str`.
pub fn get_str<'a>(obj: &'a Json, key: &str) -> Option<&'a str> {
    get(obj, key).and_then(as_str)
}

/// Encodes a key as the wire bitstring: character `i` is `'1'` iff key bit
/// `i` is true (so the string reads in key-input order, not as a binary
/// numeral).
pub fn key_to_bits(key: &[bool]) -> String {
    key.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

/// Parses a wire key bitstring; rejects any character other than `0`/`1`.
pub fn key_from_bits(s: &str) -> Option<Vec<bool>> {
    s.chars()
        .map(|c| match c {
            '0' => Some(false),
            '1' => Some(true),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let msg = Json::Object(vec![
            ("id".to_string(), 1u64.to_json()),
            ("op".to_string(), "ping".to_json()),
        ]);
        let bytes = encode(&msg);
        assert_eq!(&bytes[..4], b"ORP1");
        let mut cursor = io::Cursor::new(bytes.clone());
        match read_frame(&mut cursor).unwrap() {
            FrameRead::Payload(p) => {
                assert_eq!(p, msg.compact().into_bytes());
                assert_eq!(bytes.len(), 8 + p.len());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(read_frame(&mut cursor).unwrap(), FrameRead::Eof);
    }

    #[test]
    fn bad_magic_and_oversize_are_malformed() {
        let mut bad = encode(&Json::Null);
        bad[0] = b'X';
        let mut c = io::Cursor::new(bad);
        assert!(matches!(read_frame(&mut c).unwrap(), FrameRead::Malformed(_)));

        let mut oversize = Vec::new();
        oversize.extend_from_slice(&MAGIC);
        oversize.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        let mut c = io::Cursor::new(oversize);
        assert!(matches!(read_frame(&mut c).unwrap(), FrameRead::Malformed(_)));
    }

    #[test]
    fn truncated_frames_error() {
        let whole = encode(&Json::Bool(true));
        for cut in [1, 5, 9] {
            let mut c = io::Cursor::new(whole[..cut].to_vec());
            assert!(read_frame(&mut c).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn key_bits_round_trip() {
        let key = vec![true, false, false, true, true];
        assert_eq!(key_to_bits(&key), "10011");
        assert_eq!(key_from_bits("10011"), Some(key));
        assert_eq!(key_from_bits("10x1"), None);
        assert_eq!(key_from_bits(""), Some(Vec::new()));
    }

    #[test]
    fn response_shapes() {
        assert_eq!(
            err_response(3, code::UNKNOWN_OP, "unknown op: x").compact(),
            r#"{"id":3,"ok":false,"code":103,"error":"unknown op: x"}"#
        );
        assert_eq!(
            ok_response(1, vec![("job_id".to_string(), 7u64.to_json())]).compact(),
            r#"{"id":1,"ok":true,"job_id":7}"#
        );
    }
}
