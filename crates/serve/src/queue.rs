//! Priority job queue with cancellation, per-job timeouts and a bounded
//! worker pool run on [`exec::Pool`].
//!
//! Lifecycle state machine (DESIGN.md §10.4):
//!
//! ```text
//! queued ──▶ running ──▶ done | failed | cancelled | timed_out
//!    └──────────────────▶ cancelled            (cancel while queued)
//! ```
//!
//! Scheduling is strict priority (high > normal > low) with FIFO order
//! inside a priority class; `started_seq` records the dequeue order so
//! tests and clients can observe it. Cancellation and timeouts are
//! *cooperative*: a running job observes them at its next
//! [`JobCtx::checkpoint`] (job adapters call it between pipeline stages,
//! and the `sleep` diagnostic job every few milliseconds). Attack jobs go
//! further: the job adapter hands [`JobCtx::cancel_flag`] and
//! [`JobCtx::deadline`] to the attack engine's `AttackCtl`, which arms the
//! CDCL solver's conflict-granularity interrupt hook — so cancels and
//! timeouts take effect *mid-solve*, not just between pipeline stages.
//!
//! Every job also carries a [`ProgressLog`]: an append-only, bounded list
//! of pre-rendered progress events that the `subscribe` op streams to
//! clients. The log is created at submission (subscribing before the job
//! runs is valid), closed when the job reaches a terminal state, and
//! capped at [`PROGRESS_CAP`] events (overflow is counted, never blocks
//! the worker).
//!
//! The worker pool is built on [`exec::Pool`]: `run` issues one `par_map`
//! whose items are the worker indices, so each worker loop occupies one
//! pool task for the daemon's lifetime and the pool's stage counters
//! account the workers' busy/idle split on shutdown.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Scheduling class of a job; higher classes always dequeue first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Dequeued before everything else.
    High,
    /// The default class.
    Normal,
    /// Dequeued only when no high/normal work is pending.
    Low,
}

impl Priority {
    /// Wire name (DESIGN.md §10.3).
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    /// Parses the wire name.
    pub fn from_wire(s: &str) -> Option<Priority> {
        match s {
            "high" => Some(Priority::High),
            "normal" => Some(Priority::Normal),
            "low" => Some(Priority::Low),
            _ => None,
        }
    }

    fn rank(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// Job lifecycle state (wire names via [`JobState::as_str`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// Executing on a worker.
    Running,
    /// Finished with a result.
    Done,
    /// Finished with an error.
    Failed,
    /// Stopped by a cancel request (or a non-drain shutdown).
    Cancelled,
    /// Stopped by its own timeout.
    TimedOut,
}

impl JobState {
    /// Wire name (DESIGN.md §10.4).
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::TimedOut => "timed_out",
        }
    }

    /// Whether the state is terminal.
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

/// Why a job stopped before producing a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// Observed a cancel request at a checkpoint.
    Cancelled,
    /// Observed its deadline at a checkpoint.
    TimedOut,
    /// The job itself failed (bad input, unknown artifact, engine error).
    Failed(String),
}

impl From<JobInterrupt> for JobError {
    fn from(i: JobInterrupt) -> Self {
        match i {
            JobInterrupt::Cancelled => JobError::Cancelled,
            JobInterrupt::TimedOut => JobError::TimedOut,
        }
    }
}

/// The two cooperative interrupts a checkpoint can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobInterrupt {
    /// A cancel request (user or shutdown) is pending.
    Cancelled,
    /// The job's deadline has passed.
    TimedOut,
}

/// Hard cap on stored progress events per job; past it events are counted
/// in [`ProgressBatch::dropped`] instead of stored, so a chatty job can
/// never hold the daemon's memory hostage.
pub const PROGRESS_CAP: usize = 4096;

/// Append-only per-job event log backing the `subscribe` op.
///
/// Events are pre-rendered strings (compact JSON on the wire path) so the
/// queue stays payload-agnostic. Writers never block; readers block on a
/// condvar until new events arrive or the log closes.
pub struct ProgressLog {
    inner: Mutex<ProgressInner>,
    cond: Condvar,
}

#[derive(Default)]
struct ProgressInner {
    events: Vec<String>,
    dropped: u64,
    closed: bool,
}

/// What [`ProgressLog::wait_events`] hands back to a subscriber.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgressBatch {
    /// Events starting at the requested cursor, in order.
    pub events: Vec<String>,
    /// Cursor to pass next time (absolute index of the next unseen event).
    pub next_cursor: u64,
    /// Whether the log is closed (the job is terminal) — no more events
    /// will ever arrive.
    pub closed: bool,
    /// Events discarded because the log hit [`PROGRESS_CAP`].
    pub dropped: u64,
}

impl ProgressLog {
    fn new() -> Arc<ProgressLog> {
        Arc::new(ProgressLog {
            inner: Mutex::new(ProgressInner::default()),
            cond: Condvar::new(),
        })
    }

    /// Appends one pre-rendered event. Never blocks; past the cap the
    /// event is counted as dropped. No-op once closed.
    pub fn push(&self, event: String) {
        let mut g = self.inner.lock().expect("progress lock");
        if g.closed {
            return;
        }
        if g.events.len() >= PROGRESS_CAP {
            g.dropped += 1;
        } else {
            g.events.push(event);
        }
        drop(g);
        self.cond.notify_all();
    }

    fn close(&self) {
        let mut g = self.inner.lock().expect("progress lock");
        g.closed = true;
        drop(g);
        self.cond.notify_all();
    }

    /// Blocks until at least one event at/after `cursor` exists, the log
    /// closes, or `limit` passes; returns up to `max` events from `cursor`.
    /// A cursor past the end of a closed log returns an empty, closed
    /// batch (the caller decides whether that is an error).
    pub fn wait_events(&self, cursor: u64, max: usize, limit: Duration) -> ProgressBatch {
        let deadline = Instant::now() + limit;
        let mut g = self.inner.lock().expect("progress lock");
        loop {
            if (g.events.len() as u64) > cursor || g.closed {
                let from = (cursor as usize).min(g.events.len());
                let to = g.events.len().min(from + max.max(1));
                return ProgressBatch {
                    events: g.events[from..to].to_vec(),
                    next_cursor: to as u64,
                    closed: g.closed && to == g.events.len(),
                    dropped: g.dropped,
                };
            }
            let now = Instant::now();
            if now >= deadline {
                return ProgressBatch {
                    events: Vec::new(),
                    next_cursor: cursor,
                    closed: false,
                    dropped: g.dropped,
                };
            }
            let (ng, _) = self
                .cond
                .wait_timeout(g, deadline - now)
                .expect("progress lock");
            g = ng;
        }
    }
}

/// Execution context handed to the job runner: cancellation flag, deadline
/// and the progress-stage recorder.
pub struct JobCtx {
    cancel: Arc<AtomicBool>,
    deadline: Option<Instant>,
    started: Instant,
    stage: Mutex<StageLog>,
    progress: Arc<ProgressLog>,
}

#[derive(Debug, Default, Clone)]
struct StageLog {
    current: String,
    /// Completed `(stage, wall_ns)` entries, in order.
    finished: Vec<(String, u64)>,
    current_since_ns: u64,
}

impl JobCtx {
    fn new(
        cancel: Arc<AtomicBool>,
        timeout: Option<Duration>,
        progress: Arc<ProgressLog>,
    ) -> JobCtx {
        let started = Instant::now();
        JobCtx {
            cancel,
            deadline: timeout.map(|t| started + t),
            started,
            stage: Mutex::new(StageLog::default()),
            progress,
        }
    }

    /// The job's cancel flag — the same flag the `cancel` op raises. Job
    /// adapters hand this to an attack engine's `AttackCtl` so the CDCL
    /// conflict-granularity hook observes daemon-side cancellation.
    pub fn cancel_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancel)
    }

    /// The job's absolute deadline, if a timeout was submitted.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The job's progress log (shared with subscribers).
    pub fn progress_log(&self) -> Arc<ProgressLog> {
        Arc::clone(&self.progress)
    }

    /// Returns an interrupt if a cancel request is pending or the deadline
    /// has passed. Job adapters call this between pipeline stages; the
    /// contract is "checkpoint at least once per stage".
    pub fn checkpoint(&self) -> Result<(), JobInterrupt> {
        if self.cancel.load(Ordering::Acquire) {
            return Err(JobInterrupt::Cancelled);
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Err(JobInterrupt::TimedOut);
            }
        }
        Ok(())
    }

    /// Sleeps up to `total`, waking every few milliseconds to checkpoint —
    /// the body of the `sleep` diagnostic job and the reason timeouts and
    /// cancellation fire promptly in the failure-path tests.
    pub fn sleep_cancellable(&self, total: Duration) -> Result<(), JobInterrupt> {
        let until = Instant::now() + total;
        loop {
            self.checkpoint()?;
            let now = Instant::now();
            if now >= until {
                return Ok(());
            }
            std::thread::sleep((until - now).min(Duration::from_millis(5)));
        }
    }

    /// Records entering a named pipeline stage; the previous stage's wall
    /// time is closed out into the per-stage telemetry (`status` op), and a
    /// `phase` event is pushed to subscribers. Stage names are static
    /// identifiers, so embedding them in the pre-rendered JSON is safe.
    pub fn set_stage(&self, name: &str) {
        let now_ns = self.started.elapsed().as_nanos() as u64;
        let mut log = self.stage.lock().expect("stage lock");
        if !log.current.is_empty() {
            let prev = std::mem::take(&mut log.current);
            let spent = now_ns - log.current_since_ns;
            log.finished.push((prev, spent));
        }
        log.current = name.to_string();
        log.current_since_ns = now_ns;
        drop(log);
        self.progress.push(format!("{{\"type\":\"phase\",\"name\":\"{name}\"}}"));
    }

    fn stage_snapshot(&self) -> (String, Vec<(String, u64)>) {
        let log = self.stage.lock().expect("stage lock");
        (log.current.clone(), log.finished.clone())
    }

    fn close_stages(&self) -> Vec<(String, u64)> {
        let now_ns = self.started.elapsed().as_nanos() as u64;
        let mut log = self.stage.lock().expect("stage lock");
        if !log.current.is_empty() {
            let prev = std::mem::take(&mut log.current);
            let spent = now_ns - log.current_since_ns;
            log.finished.push((prev, spent));
        }
        log.finished.clone()
    }
}

/// Point-in-time public view of one job (everything the `status` op
/// reports, minus the op envelope).
#[derive(Debug, Clone)]
pub struct JobStatus<R> {
    /// Server-assigned job id (1-based, per daemon).
    pub id: u64,
    /// Job kind string as submitted.
    pub kind: String,
    /// Scheduling class.
    pub priority: Priority,
    /// Lifecycle state.
    pub state: JobState,
    /// Current pipeline stage ("" when not running).
    pub stage: String,
    /// Completed `(stage, wall_ns)` telemetry, in execution order.
    pub stages: Vec<(String, u64)>,
    /// Order in which the job was dequeued (1-based; 0 = never started).
    pub started_seq: u64,
    /// Nanoseconds spent queued (up to now, or until dequeue).
    pub queued_ns: u64,
    /// Nanoseconds spent running (up to now, or until terminal).
    pub run_ns: u64,
    /// The result, when `state == Done`.
    pub result: Option<R>,
    /// The error message, when `state == Failed`.
    pub error: Option<String>,
}

struct Job<J, R> {
    id: u64,
    kind: String,
    priority: Priority,
    state: JobState,
    payload: Option<J>,
    cancel: Arc<AtomicBool>,
    timeout: Option<Duration>,
    progress: Arc<ProgressLog>,
    submitted: Instant,
    dequeued: Option<Instant>,
    finished: Option<Instant>,
    started_seq: u64,
    ctx: Option<Arc<JobCtx>>,
    stages: Vec<(String, u64)>,
    result: Option<R>,
    error: Option<String>,
}

/// Aggregate queue counters (exported via the `stats` op).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Configured worker count.
    pub workers: usize,
    /// Pending jobs per class, `[high, normal, low]`.
    pub depth: [usize; 3],
    /// Jobs currently executing.
    pub running: usize,
    /// Jobs accepted in total.
    pub submitted: u64,
    /// Jobs finished in `done`.
    pub completed: u64,
    /// Jobs finished in `failed`.
    pub failed: u64,
    /// Jobs finished in `cancelled`.
    pub cancelled: u64,
    /// Jobs finished in `timed_out`.
    pub timed_out: u64,
    /// Total worker nanoseconds spent executing jobs.
    pub busy_ns: u64,
    /// Total nanoseconds finished jobs spent waiting in the queue.
    pub queue_wait_ns: u64,
}

struct Inner<J, R> {
    jobs: HashMap<u64, Job<J, R>>,
    /// Pending ids per priority class, FIFO.
    pending: [std::collections::VecDeque<u64>; 3],
    next_id: u64,
    next_start_seq: u64,
    running: usize,
    shutdown: bool,
    stats: QueueStats,
}

/// The queue. `J` is the job payload consumed by the runner, `R` the
/// result type stored for `status`/`result` (`R: Clone` so snapshots are
/// cheap copies).
pub struct JobQueue<J, R> {
    inner: Mutex<Inner<J, R>>,
    /// Signals workers: work available or shutdown.
    work: Condvar,
    /// Signals waiters: some job reached a terminal state.
    terminal: Condvar,
    workers: usize,
}

/// Error returned by [`JobQueue::submit`] after shutdown began.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShuttingDown;

impl<J: Send, R: Clone + Send> JobQueue<J, R> {
    /// Creates a queue executing on `workers` concurrent workers (min 1).
    pub fn new(workers: usize) -> Arc<Self> {
        Arc::new(JobQueue {
            inner: Mutex::new(Inner {
                jobs: HashMap::new(),
                pending: Default::default(),
                next_id: 1,
                next_start_seq: 1,
                running: 0,
                shutdown: false,
                stats: QueueStats {
                    workers: workers.max(1),
                    ..QueueStats::default()
                },
            }),
            work: Condvar::new(),
            terminal: Condvar::new(),
            workers: workers.max(1),
        })
    }

    /// Enqueues a job; returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`ShuttingDown`] once shutdown has begun.
    pub fn submit(
        &self,
        kind: &str,
        payload: J,
        priority: Priority,
        timeout: Option<Duration>,
    ) -> Result<u64, ShuttingDown> {
        let mut g = self.inner.lock().expect("queue lock");
        if g.shutdown {
            return Err(ShuttingDown);
        }
        let id = g.next_id;
        g.next_id += 1;
        g.jobs.insert(
            id,
            Job {
                id,
                kind: kind.to_string(),
                priority,
                state: JobState::Queued,
                payload: Some(payload),
                cancel: Arc::new(AtomicBool::new(false)),
                timeout,
                progress: ProgressLog::new(),
                submitted: Instant::now(),
                dequeued: None,
                finished: None,
                started_seq: 0,
                ctx: None,
                stages: Vec::new(),
                result: None,
                error: None,
            },
        );
        g.pending[priority.rank()].push_back(id);
        g.stats.submitted += 1;
        drop(g);
        self.work.notify_one();
        Ok(id)
    }

    /// Requests cancellation. A queued job transitions to `cancelled`
    /// immediately; a running job has its cancel flag raised and
    /// transitions at its next checkpoint. Returns the state observed
    /// right after the request, or `None` for an unknown id.
    pub fn cancel(&self, id: u64) -> Option<JobState> {
        let mut g = self.inner.lock().expect("queue lock");
        let inner = &mut *g;
        let job = inner.jobs.get_mut(&id)?;
        match job.state {
            JobState::Queued => {
                job.state = JobState::Cancelled;
                job.finished = Some(Instant::now());
                job.payload = None;
                job.cancel.store(true, Ordering::Release);
                job.progress.close();
                for q in inner.pending.iter_mut() {
                    q.retain(|&p| p != id);
                }
                inner.stats.cancelled += 1;
                drop(g);
                self.terminal.notify_all();
                Some(JobState::Cancelled)
            }
            JobState::Running => {
                job.cancel.store(true, Ordering::Release);
                Some(JobState::Running)
            }
            s => Some(s),
        }
    }

    /// Snapshot of one job, or `None` for an unknown id.
    pub fn status(&self, id: u64) -> Option<JobStatus<R>> {
        let g = self.inner.lock().expect("queue lock");
        g.jobs.get(&id).map(Self::snapshot)
    }

    /// The progress log of one job, or `None` for an unknown id. Valid
    /// from submission (before the job runs) until the daemon exits.
    pub fn progress(&self, id: u64) -> Option<Arc<ProgressLog>> {
        let g = self.inner.lock().expect("queue lock");
        g.jobs.get(&id).map(|j| Arc::clone(&j.progress))
    }

    fn snapshot(job: &Job<J, R>) -> JobStatus<R> {
        let (stage, stages) = match (&job.ctx, job.state) {
            (Some(ctx), JobState::Running) => ctx.stage_snapshot(),
            _ => (String::new(), job.stages.clone()),
        };
        let queued_ns = match job.dequeued {
            Some(d) => (d - job.submitted).as_nanos() as u64,
            None => match job.finished {
                Some(f) => (f - job.submitted).as_nanos() as u64,
                None => job.submitted.elapsed().as_nanos() as u64,
            },
        };
        let run_ns = match job.dequeued {
            Some(d) => match job.finished {
                Some(f) => (f - d).as_nanos() as u64,
                None => d.elapsed().as_nanos() as u64,
            },
            None => 0,
        };
        JobStatus {
            id: job.id,
            kind: job.kind.clone(),
            priority: job.priority,
            state: job.state,
            stage,
            stages,
            started_seq: job.started_seq,
            queued_ns,
            run_ns,
            result: job.result.clone(),
            error: job.error.clone(),
        }
    }

    /// Blocks until job `id` reaches a terminal state (or `limit` passes),
    /// returning the final snapshot. `None` for an unknown id.
    pub fn wait_terminal(&self, id: u64, limit: Duration) -> Option<JobStatus<R>> {
        let deadline = Instant::now() + limit;
        let mut g = self.inner.lock().expect("queue lock");
        loop {
            let job = g.jobs.get(&id)?;
            if job.state.is_terminal() {
                return Some(Self::snapshot(job));
            }
            let now = Instant::now();
            if now >= deadline {
                return Some(Self::snapshot(job));
            }
            let (ng, _) = self
                .terminal
                .wait_timeout(g, deadline - now)
                .expect("queue lock");
            g = ng;
        }
    }

    /// Begins shutdown. With `drain`, queued and running jobs complete
    /// first; without, queued jobs are cancelled and running jobs get
    /// their cancel flag raised. Either way no further submissions are
    /// accepted and `run` returns once the queue is empty.
    pub fn shutdown(&self, drain: bool) {
        let mut g = self.inner.lock().expect("queue lock");
        let inner = &mut *g;
        inner.shutdown = true;
        if !drain {
            let ids: Vec<u64> = inner.pending.iter().flatten().copied().collect();
            for q in inner.pending.iter_mut() {
                q.clear();
            }
            let now = Instant::now();
            for id in ids {
                if let Some(job) = inner.jobs.get_mut(&id) {
                    job.state = JobState::Cancelled;
                    job.finished = Some(now);
                    job.payload = None;
                    job.cancel.store(true, Ordering::Release);
                    job.progress.close();
                    inner.stats.cancelled += 1;
                }
            }
            for job in inner.jobs.values() {
                if job.state == JobState::Running {
                    job.cancel.store(true, Ordering::Release);
                }
            }
        }
        drop(g);
        self.work.notify_all();
        self.terminal.notify_all();
    }

    /// Whether shutdown has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.lock().expect("queue lock").shutdown
    }

    /// Current counters.
    pub fn stats(&self) -> QueueStats {
        let g = self.inner.lock().expect("queue lock");
        let mut s = g.stats.clone();
        s.depth = [g.pending[0].len(), g.pending[1].len(), g.pending[2].len()];
        s.running = g.running;
        s
    }

    /// Runs the worker pool until shutdown completes. Blocks the calling
    /// thread; the daemon calls this from a dedicated thread.
    ///
    /// Each of the `workers` configured workers is one long-lived
    /// [`exec::Pool::par_map`] task; `runner` executes one job at a time
    /// per worker and must checkpoint via the provided [`JobCtx`]. A
    /// panicking runner fails the job, never the worker.
    pub fn run<F>(self: &Arc<Self>, runner: F)
    where
        F: Fn(&JobCtx, &J) -> Result<R, JobError> + Sync,
        J: Sync,
        R: Sync,
    {
        let pool = exec::Pool::with_threads(self.workers);
        let indices: Vec<usize> = (0..self.workers).collect();
        pool.par_map("serve_workers", &indices, |_, _| self.worker_loop(&runner));
    }

    fn worker_loop<F>(&self, runner: &F)
    where
        F: Fn(&JobCtx, &J) -> Result<R, JobError> + Sync,
    {
        loop {
            // Dequeue the best pending job, or exit on drained shutdown.
            let (id, payload, ctx) = {
                let mut g = self.inner.lock().expect("queue lock");
                let job = loop {
                    if let Some(id) = Self::pop_best(&mut g) {
                        break id;
                    }
                    if g.shutdown {
                        return;
                    }
                    g = self.work.wait(g).expect("queue lock");
                };
                let seq = g.next_start_seq;
                g.next_start_seq += 1;
                g.running += 1;
                let j = g.jobs.get_mut(&job).expect("pending job exists");
                j.state = JobState::Running;
                j.started_seq = seq;
                j.dequeued = Some(Instant::now());
                let ctx = Arc::new(JobCtx::new(
                    Arc::clone(&j.cancel),
                    j.timeout,
                    Arc::clone(&j.progress),
                ));
                j.ctx = Some(Arc::clone(&ctx));
                let payload = j.payload.take().expect("queued job has payload");
                (job, payload, ctx)
            };

            let started = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| runner(&ctx, &payload)))
                .unwrap_or_else(|p| {
                    let msg = p
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| p.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "job panicked".to_string());
                    Err(JobError::Failed(format!("panicked: {msg}")))
                });
            let busy_ns = started.elapsed().as_nanos() as u64;

            let mut g = self.inner.lock().expect("queue lock");
            let inner = &mut *g;
            inner.running -= 1;
            inner.stats.busy_ns += busy_ns;
            let j = inner.jobs.get_mut(&id).expect("running job exists");
            j.finished = Some(Instant::now());
            j.stages = ctx.close_stages();
            j.ctx = None;
            j.progress.close();
            match outcome {
                Ok(result) => {
                    j.state = JobState::Done;
                    j.result = Some(result);
                    inner.stats.completed += 1;
                }
                Err(JobError::Cancelled) => {
                    j.state = JobState::Cancelled;
                    inner.stats.cancelled += 1;
                }
                Err(JobError::TimedOut) => {
                    j.state = JobState::TimedOut;
                    inner.stats.timed_out += 1;
                }
                Err(JobError::Failed(e)) => {
                    j.state = JobState::Failed;
                    j.error = Some(e);
                    inner.stats.failed += 1;
                }
            }
            let wait_ns = (j.dequeued.expect("dequeued") - j.submitted).as_nanos() as u64;
            inner.stats.queue_wait_ns += wait_ns;
            drop(g);
            self.terminal.notify_all();
        }
    }

    fn pop_best(g: &mut Inner<J, R>) -> Option<u64> {
        for q in g.pending.iter_mut() {
            if let Some(id) = q.pop_front() {
                return Some(id);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test payload: how many milliseconds to sleep cancellably, or a
    /// forced failure / panic.
    enum Work {
        Sleep(u64),
        Fail,
        Panic,
    }

    fn runner(ctx: &JobCtx, w: &Work) -> Result<u64, JobError> {
        match w {
            Work::Sleep(ms) => {
                ctx.set_stage("sleep");
                ctx.sleep_cancellable(Duration::from_millis(*ms))?;
                Ok(*ms)
            }
            Work::Fail => Err(JobError::Failed("forced".to_string())),
            Work::Panic => panic!("deliberate test panic"),
        }
    }

    fn start(workers: usize) -> (Arc<JobQueue<Work, u64>>, std::thread::JoinHandle<()>) {
        let q = JobQueue::<Work, u64>::new(workers);
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.run(runner));
        (q, h)
    }

    const WAIT: Duration = Duration::from_secs(10);

    #[test]
    fn done_failed_and_panic_states() {
        let (q, h) = start(2);
        let ok = q.submit("sleep", Work::Sleep(1), Priority::Normal, None).unwrap();
        let bad = q.submit("fail", Work::Fail, Priority::Normal, None).unwrap();
        let boom = q.submit("panic", Work::Panic, Priority::Normal, None).unwrap();
        let s_ok = q.wait_terminal(ok, WAIT).unwrap();
        assert_eq!((s_ok.state, s_ok.result), (JobState::Done, Some(1)));
        assert_eq!(s_ok.stages.len(), 1, "one closed stage");
        let s_bad = q.wait_terminal(bad, WAIT).unwrap();
        assert_eq!(s_bad.state, JobState::Failed);
        assert_eq!(s_bad.error.as_deref(), Some("forced"));
        let s_boom = q.wait_terminal(boom, WAIT).unwrap();
        assert_eq!(s_boom.state, JobState::Failed);
        assert!(s_boom.error.unwrap().contains("deliberate test panic"));
        q.shutdown(true);
        h.join().unwrap();
        let st = q.stats();
        assert_eq!((st.completed, st.failed), (1, 2));
    }

    #[test]
    fn unknown_ids() {
        let (q, h) = start(1);
        assert!(q.status(99).is_none());
        assert!(q.cancel(99).is_none());
        assert!(q.wait_terminal(99, WAIT).is_none());
        q.shutdown(true);
        h.join().unwrap();
    }

    #[test]
    fn progress_log_streams_phase_events_then_closes() {
        let (q, h) = start(1);
        let id = q.submit("sleep", Work::Sleep(30), Priority::Normal, None).unwrap();
        let log = q.progress(id).unwrap();
        let batch = log.wait_events(0, 16, WAIT);
        assert_eq!(batch.events, [r#"{"type":"phase","name":"sleep"}"#]);
        assert_eq!(batch.next_cursor, 1);
        let fin = log.wait_events(batch.next_cursor, 16, WAIT);
        assert!(fin.closed, "log closes when the job is terminal");
        assert!(fin.events.is_empty());
        assert_eq!(fin.dropped, 0);
        q.shutdown(true);
        h.join().unwrap();
    }

    #[test]
    fn progress_log_caps_storage_and_counts_overflow() {
        let log = ProgressLog::new();
        for i in 0..PROGRESS_CAP + 5 {
            log.push(format!("e{i}"));
        }
        let batch = log.wait_events(0, PROGRESS_CAP + 10, Duration::from_millis(10));
        assert_eq!(batch.events.len(), PROGRESS_CAP);
        assert_eq!(batch.dropped, 5);
        assert!(!batch.closed);
        log.close();
        let fin = log.wait_events(batch.next_cursor, 10, WAIT);
        assert!(fin.closed);
        assert_eq!(fin.next_cursor, PROGRESS_CAP as u64);
    }

    #[test]
    fn cancelled_queued_job_closes_its_progress_log() {
        let (q, h) = start(1);
        let blocker = q.submit("sleep", Work::Sleep(200), Priority::Normal, None).unwrap();
        while q.status(blocker).unwrap().state != JobState::Running {
            std::thread::sleep(Duration::from_millis(2));
        }
        let queued = q.submit("sleep", Work::Sleep(1), Priority::Normal, None).unwrap();
        q.cancel(queued);
        let fin = q.progress(queued).unwrap().wait_events(0, 16, WAIT);
        assert!(fin.closed, "cancel-while-queued must close the log");
        assert!(fin.events.is_empty());
        q.shutdown(false);
        h.join().unwrap();
    }

    #[test]
    fn submit_after_shutdown_rejected() {
        let (q, h) = start(1);
        q.shutdown(true);
        assert_eq!(
            q.submit("sleep", Work::Sleep(0), Priority::Normal, None),
            Err(ShuttingDown)
        );
        h.join().unwrap();
    }
}
