//! Job kinds and their adapters over the shared compiled artifacts.
//!
//! Every job is parsed from the `submit` op's `job` object (schemas in
//! DESIGN.md §10.3), validated *before* queueing (schema errors are
//! protocol errors, not failed jobs), and executed against [`ServeState`]:
//! the two content-hashed caches. Job adapters checkpoint between pipeline
//! stages; `attack` jobs go further and hand the [`JobCtx`]'s cancel flag
//! and deadline to the attack engine's `AttackCtl`, so cancellation and
//! timeouts fire per engine step — and, through the CDCL conflict-budget
//! hook, even mid-solve. Engine progress events are rendered into the
//! job's progress log for the `subscribe` op.
//!
//! Security model, mirroring the paper: the daemon holds each lock's
//! correct key server-side and **never returns it**. Clients get the
//! artifact id; `attack` jobs exercise the oracle path against the stored
//! key, and `verify` jobs answer exact-equivalence queries about candidate
//! keys — exactly the interface an attacker-facing oracle exposes.

use std::sync::Arc;

use atpg::AtpgConfig;
use attacks::engine::{self, AttackCtl, AttackEngine, ProgressEvent};
use attacks::{
    appsat, double_dip, dyn_unlock, hill_climbing, sat, sensitization, CombOracle, FailureReason,
};
use locking::LockedCircuit;
use netlist::{Circuit, CompiledCircuit};
use orap_bench::json::Json;
use orap_bench::json_object;

use crate::cache::ArtifactCache;
use crate::hash::{fnv1a64, fnv1a64_extend, hex16};
use crate::proto::{self, get_str, get_u64};
use crate::queue::{JobCtx, JobError};

/// A parsed-and-compiled source circuit, shared across jobs via the cache.
pub struct CircuitArtifact {
    /// Canonical `.bench` text (re-emitted, so the hash is formatting
    /// independent).
    pub bench: String,
    /// The parsed circuit.
    pub circuit: Circuit,
    /// The shared compiled engine artifact.
    pub compiled: Arc<CompiledCircuit>,
    /// Artifact id (`hex16(fnv1a64(bench))`).
    pub id: String,
}

/// A locked circuit plus its compiled artifact, shared across jobs.
pub struct LockedArtifact {
    /// The locked circuit with its (server-private) correct key.
    pub locked: LockedCircuit,
    /// Compiled artifact of `locked.circuit`.
    pub compiled: Arc<CompiledCircuit>,
    /// Source-circuit artifact id this lock was derived from.
    pub source: String,
    /// This artifact's id.
    pub id: String,
    /// For `protect`-built artifacts: the unlock-schedule/hardware summary
    /// (so cache hits report the same numbers as the build). `None` for
    /// plain `lock` artifacts.
    pub schedule: Option<Json>,
}

/// Shared daemon state: the two artifact caches.
pub struct ServeState {
    /// Source circuits, keyed by canonical-bench content hash.
    pub circuits: ArtifactCache<CircuitArtifact>,
    /// Locked artifacts, keyed by `(source, scheme, key_bits, seed)` hash.
    pub locked: ArtifactCache<LockedArtifact>,
}

impl ServeState {
    /// Creates the state with the given cache capacities (0 = unbounded).
    pub fn new(circuit_capacity: usize, locked_capacity: usize) -> ServeState {
        ServeState {
            circuits: ArtifactCache::new(circuit_capacity),
            locked: ArtifactCache::new(locked_capacity),
        }
    }

    /// Parses + compiles `bench_text` through the circuit cache
    /// (single-flight per content hash).
    fn circuit_artifact(&self, bench_text: &str) -> Result<Arc<CircuitArtifact>, String> {
        // Parse outside the cache to canonicalize: the content hash must
        // not depend on client formatting (comments, whitespace, net-name
        // case). Parsing is cheap next to compilation.
        let circuit = netlist::bench::parse(bench_text).map_err(|e| format!("bad bench: {e}"))?;
        let bench = netlist::bench::write(&circuit);
        let id = hex16(fnv1a64(bench.as_bytes()));
        let id2 = id.clone();
        self.circuits.get_or_build(&id, move || {
            let compiled = CompiledCircuit::compile(&circuit)
                .map_err(|e| format!("compile failed: {e}"))?;
            Ok(CircuitArtifact {
                bench,
                circuit,
                compiled: Arc::new(compiled),
                id: id2,
            })
        })
    }
}

/// The locking schemes the `lock` job accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockScheme {
    /// Random XOR/XNOR key-gate insertion.
    Rll,
    /// Weighted logic locking (control width 3).
    Wll,
    /// Stripped-functionality logic locking (SFLL-HD).
    Sfll,
    /// K-Gate multi-key input encoding (one key word per input class).
    KGate,
    /// Dynamic scan obfuscation; the artifact is the *unrolled* bounded
    /// scan session (load + capture + unload) with the LFSR seed as its
    /// key, i.e. exactly what DynUnlock attacks.
    ScanObf,
}

impl LockScheme {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            LockScheme::Rll => "rll",
            LockScheme::Wll => "wll",
            LockScheme::Sfll => "sfll",
            LockScheme::KGate => "kgate",
            LockScheme::ScanObf => "scan_obf",
        }
    }

    /// Parses the wire name.
    pub fn from_wire(s: &str) -> Option<LockScheme> {
        match s {
            "rll" => Some(LockScheme::Rll),
            "wll" => Some(LockScheme::Wll),
            "sfll" => Some(LockScheme::Sfll),
            "kgate" => Some(LockScheme::KGate),
            "scan_obf" => Some(LockScheme::ScanObf),
            _ => None,
        }
    }
}

/// The attacks the `attack` job runs — one wire name per engine behind
/// [`attacks::engine::AttackEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    /// The SAT attack (DIP elimination).
    Sat,
    /// AppSAT (approximate, early-exit on settlement).
    AppSat,
    /// Double-DIP (2-discriminating inputs, SAT fallback).
    DoubleDip,
    /// Hill climbing against sampled oracle responses.
    Hill,
    /// Key sensitization (per-bit miter probing).
    Sensitization,
    /// DynUnlock: the SAT loop over unrolled scan sessions (pair with
    /// `scan_obf` artifacts).
    DynUnlock,
}

impl AttackKind {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            AttackKind::Sat => "sat",
            AttackKind::AppSat => "appsat",
            AttackKind::DoubleDip => "double_dip",
            AttackKind::Hill => "hill",
            AttackKind::Sensitization => "sensitization",
            AttackKind::DynUnlock => "dyn_unlock",
        }
    }

    /// Parses the wire name.
    pub fn from_wire(s: &str) -> Option<AttackKind> {
        match s {
            "sat" => Some(AttackKind::Sat),
            "appsat" => Some(AttackKind::AppSat),
            "double_dip" => Some(AttackKind::DoubleDip),
            "hill" => Some(AttackKind::Hill),
            "sensitization" => Some(AttackKind::Sensitization),
            "dyn_unlock" => Some(AttackKind::DynUnlock),
            _ => None,
        }
    }
}

/// A validated job specification (the `job` object of a `submit`).
#[derive(Debug, Clone)]
pub enum JobSpec {
    /// Lock a circuit; produces a locked artifact (the key stays
    /// server-side).
    Lock {
        /// `.bench` text of the circuit to lock.
        bench: String,
        /// Scheme to apply.
        scheme: LockScheme,
        /// Key width.
        key_bits: usize,
        /// Scheme PRNG seed.
        seed: u64,
        /// SFLL-HD protected-cube Hamming distance (ignored by `rll`/`wll`).
        hamming_distance: usize,
        /// K-Gate input-class count (ignored by every other scheme; the
        /// per-class word width is `key_bits / classes`).
        classes: usize,
    },
    /// Run an oracle-guided attack against a locked artifact.
    Attack {
        /// Locked-artifact id (from a `lock` result).
        target: String,
        /// Which attack.
        attack: AttackKind,
        /// Iteration cap (DIPs for `sat`/`appsat`/`double_dip`, restarts
        /// for `hill`, probes per bit for `sensitization`); 0 = the
        /// attack's default.
        max_iterations: usize,
        /// Oracle-query budget enforced at the oracle boundary; 0 =
        /// unlimited.
        query_budget: u64,
    },
    /// Apply the full OraP protection (WLL + LFSR key register + unlock
    /// schedule) and expose the protected netlist as a locked artifact.
    Protect {
        /// `.bench` text of the design to protect.
        bench: String,
        /// WLL key width.
        key_bits: usize,
        /// Scheme variant (`basic` requires no flip-flops; `modified`
        /// needs a sequential design).
        variant: orap::OrapVariant,
        /// Designer-side PRNG seed.
        seed: u64,
    },
    /// Exact SAT-miter equivalence check of a candidate key.
    Verify {
        /// Locked-artifact id.
        target: String,
        /// Candidate key, wire bitstring order.
        key: Vec<bool>,
    },
    /// Full stuck-at ATPG over a circuit.
    Atpg {
        /// `.bench` text of the circuit.
        bench: String,
        /// Random patterns before PODEM (0 = default).
        random_patterns: usize,
        /// PODEM backtrack limit (0 = default).
        backtrack_limit: usize,
    },
    /// Diagnostic no-op that sleeps cancellably — the knob load tests and
    /// the failure-path tests use to occupy workers deterministically.
    Sleep {
        /// Milliseconds to sleep.
        ms: u64,
    },
}

impl JobSpec {
    /// Wire name of the job kind.
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::Lock { .. } => "lock",
            JobSpec::Attack { .. } => "attack",
            JobSpec::Protect { .. } => "protect",
            JobSpec::Verify { .. } => "verify",
            JobSpec::Atpg { .. } => "atpg",
            JobSpec::Sleep { .. } => "sleep",
        }
    }

    /// Parses and validates a `job` object. Errors are schema violations
    /// (protocol error 102), phrased for the client.
    pub fn parse(job: &Json) -> Result<JobSpec, String> {
        let kind = get_str(job, "kind").ok_or("job.kind must be a string")?;
        match kind {
            "lock" => {
                let bench = get_str(job, "bench").ok_or("lock.bench must be a string")?;
                let scheme_s = get_str(job, "scheme").ok_or("lock.scheme must be a string")?;
                let scheme = LockScheme::from_wire(scheme_s)
                    .ok_or_else(|| format!("unknown scheme: {scheme_s}"))?;
                let key_bits = get_u64(job, "key_bits").ok_or("lock.key_bits must be a number")?;
                if key_bits == 0 || key_bits > 4096 {
                    return Err("lock.key_bits must be in 1..=4096".to_string());
                }
                let seed = get_u64(job, "seed").unwrap_or(1);
                let hamming_distance = get_u64(job, "hamming_distance").unwrap_or(1);
                if hamming_distance > key_bits {
                    return Err("lock.hamming_distance must be <= key_bits".to_string());
                }
                let classes = get_u64(job, "classes").unwrap_or(4);
                if scheme == LockScheme::KGate {
                    if !(2..=64).contains(&classes) || !classes.is_power_of_two() {
                        return Err(
                            "lock.classes must be a power of two in 2..=64".to_string()
                        );
                    }
                    if key_bits % classes != 0 {
                        return Err(
                            "lock.key_bits must be a multiple of lock.classes".to_string()
                        );
                    }
                }
                Ok(JobSpec::Lock {
                    bench: bench.to_string(),
                    scheme,
                    key_bits: key_bits as usize,
                    seed,
                    hamming_distance: hamming_distance as usize,
                    classes: classes as usize,
                })
            }
            "attack" => {
                let target = get_str(job, "target").ok_or("attack.target must be a string")?;
                let attack_s = get_str(job, "attack").ok_or("attack.attack must be a string")?;
                let attack = AttackKind::from_wire(attack_s)
                    .ok_or_else(|| format!("unknown attack: {attack_s}"))?;
                Ok(JobSpec::Attack {
                    target: target.to_string(),
                    attack,
                    max_iterations: get_u64(job, "max_iterations").unwrap_or(0) as usize,
                    query_budget: get_u64(job, "query_budget").unwrap_or(0),
                })
            }
            "protect" => {
                let bench = get_str(job, "bench").ok_or("protect.bench must be a string")?;
                let key_bits =
                    get_u64(job, "key_bits").ok_or("protect.key_bits must be a number")?;
                if key_bits == 0 || key_bits > 4096 {
                    return Err("protect.key_bits must be in 1..=4096".to_string());
                }
                let variant = match get_str(job, "variant").unwrap_or("basic") {
                    "basic" => orap::OrapVariant::Basic,
                    "modified" => orap::OrapVariant::Modified,
                    other => return Err(format!("unknown protect variant: {other}")),
                };
                Ok(JobSpec::Protect {
                    bench: bench.to_string(),
                    key_bits: key_bits as usize,
                    variant,
                    seed: get_u64(job, "seed").unwrap_or(1),
                })
            }
            "verify" => {
                let target = get_str(job, "target").ok_or("verify.target must be a string")?;
                let key_s = get_str(job, "key").ok_or("verify.key must be a string")?;
                let key = proto::key_from_bits(key_s)
                    .ok_or("verify.key must be a bitstring of 0/1")?;
                Ok(JobSpec::Verify {
                    target: target.to_string(),
                    key,
                })
            }
            "atpg" => {
                let bench = get_str(job, "bench").ok_or("atpg.bench must be a string")?;
                Ok(JobSpec::Atpg {
                    bench: bench.to_string(),
                    random_patterns: get_u64(job, "random_patterns").unwrap_or(0) as usize,
                    backtrack_limit: get_u64(job, "backtrack_limit").unwrap_or(0) as usize,
                })
            }
            "sleep" => {
                let ms = get_u64(job, "ms").ok_or("sleep.ms must be a number")?;
                Ok(JobSpec::Sleep { ms })
            }
            other => Err(format!("unknown job kind: {other}")),
        }
    }
}

/// Renders one engine progress event as the compact-JSON line the
/// `subscribe` op streams. Stage names are static identifiers from the
/// engine layer, so direct embedding needs no escaping.
fn render_progress(e: &ProgressEvent) -> String {
    match e {
        ProgressEvent::Stage { name } => {
            format!("{{\"type\":\"stage\",\"name\":\"{name}\"}}")
        }
        ProgressEvent::Milestone(m) => format!(
            "{{\"type\":\"milestone\",\"stage\":\"{}\",\"iterations\":{},\
             \"dips_eliminated\":{},\"clauses_learned\":{},\"oracle_queries\":{}}}",
            m.stage, m.iterations, m.dips_eliminated, m.clauses_learned, m.oracle_queries
        ),
    }
}

/// Executes one job. The returned [`Json`] is the `result` object of the
/// `result`/`status` ops — free of wall-clock values, so results are
/// byte-deterministic (the golden-transcript property).
///
/// # Errors
///
/// [`JobError::Failed`] for semantic failures (unknown artifact, engine
/// errors), [`JobError::Cancelled`]/[`JobError::TimedOut`] when a
/// checkpoint observes an interrupt.
pub fn run_job(state: &ServeState, ctx: &JobCtx, spec: &JobSpec) -> Result<Json, JobError> {
    match spec {
        JobSpec::Lock {
            bench,
            scheme,
            key_bits,
            seed,
            hamming_distance,
            classes,
        } => {
            ctx.set_stage("compile");
            let src = state
                .circuit_artifact(bench)
                .map_err(JobError::Failed)?;
            ctx.checkpoint()?;
            ctx.set_stage("lock");
            let mut h = fnv1a64(src.id.as_bytes());
            h = fnv1a64_extend(h, scheme.as_str().as_bytes());
            h = fnv1a64_extend(h, &(*key_bits as u64).to_le_bytes());
            h = fnv1a64_extend(h, &seed.to_le_bytes());
            // Folded in only where it matters, so rll/wll artifact ids are
            // stable across the sfll addition.
            if *scheme == LockScheme::Sfll {
                h = fnv1a64_extend(h, &(*hamming_distance as u64).to_le_bytes());
            }
            if *scheme == LockScheme::KGate {
                h = fnv1a64_extend(h, &(*classes as u64).to_le_bytes());
            }
            let id = hex16(h);
            let key = id.clone();
            let scheme = *scheme;
            let key_bits = *key_bits;
            let seed = *seed;
            let hamming_distance = *hamming_distance;
            let classes = *classes;
            let src2 = Arc::clone(&src);
            let art = state
                .locked
                .get_or_build(&id, move || {
                    let locked = match scheme {
                        LockScheme::Rll => locking::random::lock(
                            &src2.circuit,
                            &locking::random::RllConfig {
                                key_bits,
                                seed,
                            },
                        ),
                        LockScheme::Wll => locking::weighted::lock(
                            &src2.circuit,
                            &locking::weighted::WllConfig {
                                key_bits,
                                control_width: 3,
                                seed,
                            },
                        ),
                        LockScheme::Sfll => locking::sfll::sfll_hd(
                            &src2.circuit,
                            &locking::sfll::SfllConfig {
                                key_bits,
                                hamming_distance,
                                seed,
                            },
                        ),
                        LockScheme::KGate => locking::kgate::lock(
                            &src2.circuit,
                            &locking::kgate::KGateConfig {
                                classes,
                                word_bits: key_bits / classes,
                                seed,
                            },
                        ),
                        // The stored artifact is the unrolled bounded scan
                        // session: a combinational circuit whose key inputs
                        // are the LFSR seed, attackable by any engine.
                        LockScheme::ScanObf => locking::scan_obfuscation::lock(
                            &src2.circuit,
                            &locking::scan_obfuscation::ScanObfConfig::balanced(key_bits, seed),
                        )
                        .and_then(|sol| {
                            sol.unroll(&locking::scan_obfuscation::UnrollOptions::default())
                                .map(|u| u.locked)
                        }),
                    }
                    .map_err(|e| format!("lock failed: {e}"))?;
                    let compiled = CompiledCircuit::compile(&locked.circuit)
                        .map_err(|e| format!("compile failed: {e}"))?;
                    Ok(LockedArtifact {
                        locked,
                        compiled: Arc::new(compiled),
                        source: src2.id.clone(),
                        id: key,
                        schedule: None,
                    })
                })
                .map_err(JobError::Failed)?;
            Ok(json_object! {
                artifact: art.id,
                source: art.source,
                scheme: scheme.as_str(),
                key_bits: art.locked.key_bits(),
                gates: art.locked.circuit.num_gates(),
            })
        }
        JobSpec::Attack {
            target,
            attack,
            max_iterations,
            query_budget,
        } => {
            ctx.set_stage("oracle");
            let art = state
                .locked
                .get(target)
                .ok_or_else(|| JobError::Failed(format!("unknown artifact: {target}")))?;
            let mut oracle =
                CombOracle::from_locked_compiled(&art.locked, Arc::clone(&art.compiled));
            ctx.checkpoint()?;
            ctx.set_stage("attack");
            // One engine per wire name; `max_iterations` maps onto each
            // engine's own notion of an iteration.
            let mi = *max_iterations;
            let eng: Box<dyn AttackEngine> = match attack {
                AttackKind::Sat => {
                    let mut config = sat::SatAttackConfig::default();
                    if mi > 0 {
                        config.max_iterations = mi;
                    }
                    Box::new(sat::SatEngine { config })
                }
                AttackKind::AppSat => {
                    let mut config = appsat::AppSatConfig::default();
                    if mi > 0 {
                        config.max_iterations = mi;
                    }
                    Box::new(appsat::AppSatEngine { config })
                }
                AttackKind::DoubleDip => {
                    let mut config = double_dip::DoubleDipConfig::default();
                    if mi > 0 {
                        config.max_iterations = mi;
                    }
                    Box::new(double_dip::DoubleDipEngine { config })
                }
                AttackKind::Hill => {
                    let mut config = hill_climbing::HillClimbConfig::default();
                    if mi > 0 {
                        config.restarts = mi;
                    }
                    Box::new(hill_climbing::HillClimbEngine { config })
                }
                AttackKind::Sensitization => {
                    let mut config = sensitization::SensitizationConfig::default();
                    if mi > 0 {
                        config.probes_per_bit = mi;
                    }
                    Box::new(sensitization::SensitizationEngine { config })
                }
                AttackKind::DynUnlock => {
                    let mut config = dyn_unlock::DynUnlockConfig::default();
                    if mi > 0 {
                        config.max_iterations = mi;
                    }
                    Box::new(dyn_unlock::DynUnlockEngine { config })
                }
            };
            // The engine's control block observes the *same* cancel flag
            // the `cancel` op raises and the job's submit-time deadline, so
            // interrupts land mid-solve instead of at stage boundaries.
            let progress = ctx.progress_log();
            let mut ctl = AttackCtl::new()
                .with_cancel(ctx.cancel_flag())
                .with_deadline(ctx.deadline())
                .with_query_budget(if *query_budget > 0 {
                    Some(*query_budget)
                } else {
                    None
                })
                .with_progress(Box::new(move |e| progress.push(render_progress(e))));
            let outcome = engine::run(eng.as_ref(), &art.locked, &mut oracle, &mut ctl);
            match outcome.failure {
                Some(FailureReason::Cancelled) => return Err(JobError::Cancelled),
                Some(FailureReason::TimedOut) => return Err(JobError::TimedOut),
                _ => {}
            }
            Ok(json_object! {
                succeeded: outcome.succeeded(),
                key: outcome.key.as_deref().map(proto::key_to_bits),
                key_bits: art.locked.key_bits(),
                iterations: outcome.iterations,
                oracle_queries: outcome.oracle_queries,
                failure: outcome.failure.map(|f| f.to_string()),
                solver: outcome.telemetry.solver,
            })
        }
        JobSpec::Protect {
            bench,
            key_bits,
            variant,
            seed,
        } => {
            ctx.set_stage("compile");
            let src = state
                .circuit_artifact(bench)
                .map_err(JobError::Failed)?;
            ctx.checkpoint()?;
            ctx.set_stage("protect");
            let variant_str = match variant {
                orap::OrapVariant::Basic => "basic",
                orap::OrapVariant::Modified => "modified",
            };
            let mut h = fnv1a64(src.id.as_bytes());
            h = fnv1a64_extend(h, b"orap");
            h = fnv1a64_extend(h, variant_str.as_bytes());
            h = fnv1a64_extend(h, &(*key_bits as u64).to_le_bytes());
            h = fnv1a64_extend(h, &seed.to_le_bytes());
            let id = hex16(h);
            let key = id.clone();
            let key_bits = *key_bits;
            let variant = *variant;
            let seed = *seed;
            let src2 = Arc::clone(&src);
            let art = state
                .locked
                .get_or_build(&id, move || {
                    let protected = orap::protect(
                        &src2.circuit,
                        &locking::weighted::WllConfig {
                            key_bits,
                            control_width: 3,
                            seed,
                        },
                        &orap::OrapConfig {
                            variant,
                            seed,
                            ..orap::OrapConfig::default()
                        },
                    )
                    .map_err(|e| format!("protect failed: {e}"))?;
                    let compiled = CompiledCircuit::compile(&protected.locked.circuit)
                        .map_err(|e| format!("compile failed: {e}"))?;
                    let schedule = json_object! {
                        unlock_cycles: protected.unlock_cycles(),
                        memory_points: protected.memory_points.len(),
                        response_points: protected.response_points.len(),
                        hardware_gates: protected.hardware.gates(),
                    };
                    Ok(LockedArtifact {
                        locked: protected.locked,
                        compiled: Arc::new(compiled),
                        source: src2.id.clone(),
                        id: key,
                        schedule: Some(schedule),
                    })
                })
                .map_err(JobError::Failed)?;
            ctx.checkpoint()?;
            Ok(json_object! {
                artifact: art.id,
                source: art.source,
                scheme: "orap",
                variant: variant_str,
                key_bits: art.locked.key_bits(),
                gates: art.locked.circuit.num_gates(),
                schedule: art.schedule.clone(),
            })
        }
        JobSpec::Verify { target, key } => {
            ctx.set_stage("verify");
            let art = state
                .locked
                .get(target)
                .ok_or_else(|| JobError::Failed(format!("unknown artifact: {target}")))?;
            if key.len() != art.locked.key_bits() {
                return Err(JobError::Failed(format!(
                    "key width mismatch: got {}, artifact has {}",
                    key.len(),
                    art.locked.key_bits()
                )));
            }
            ctx.checkpoint()?;
            let cex = attacks::verify::key_exact_counterexample(&art.locked, key);
            Ok(json_object! {
                exact: cex.is_none(),
                counterexample: cex.as_deref().map(proto::key_to_bits),
            })
        }
        JobSpec::Atpg {
            bench,
            random_patterns,
            backtrack_limit,
        } => {
            ctx.set_stage("compile");
            let src = state
                .circuit_artifact(bench)
                .map_err(JobError::Failed)?;
            ctx.checkpoint()?;
            ctx.set_stage("atpg");
            let mut cfg = AtpgConfig::default();
            if *random_patterns > 0 {
                cfg.random_patterns = *random_patterns;
            }
            if *backtrack_limit > 0 {
                cfg.backtrack_limit = *backtrack_limit;
            }
            let report = atpg::run_atpg_compiled(&src.circuit, Arc::clone(&src.compiled), &cfg)
                .map_err(|e| JobError::Failed(format!("atpg failed: {e}")))?;
            ctx.checkpoint()?;
            Ok(json_object! {
                total_faults: report.total_faults,
                detected: report.detected,
                coverage_percent: report.coverage_percent(),
                redundant: report.redundant,
                aborted: report.aborted,
                patterns: report.tests.len(),
            })
        }
        JobSpec::Sleep { ms } => {
            ctx.set_stage("sleep");
            ctx.sleep_cancellable(std::time::Duration::from_millis(*ms))?;
            Ok(json_object! { slept_ms: *ms })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rejects_schema_violations() {
        let bad = [
            r#"{"kind":"nope"}"#,
            r#"{"kind":"lock","scheme":"rll","key_bits":4}"#,
            r#"{"kind":"lock","bench":"x","scheme":"xyz","key_bits":4}"#,
            r#"{"kind":"lock","bench":"x","scheme":"rll","key_bits":0}"#,
            r#"{"kind":"attack","target":"t","attack":"frob"}"#,
            r#"{"kind":"verify","target":"t","key":"10a1"}"#,
            r#"{"kind":"sleep"}"#,
            r#"{"no_kind":true}"#,
            r#"{"kind":"lock","bench":"x","scheme":"sfll","key_bits":4,"hamming_distance":9}"#,
            r#"{"kind":"lock","bench":"x","scheme":"kgate","key_bits":12,"classes":3}"#,
            r#"{"kind":"lock","bench":"x","scheme":"kgate","key_bits":5,"classes":4}"#,
            r#"{"kind":"lock","bench":"x","scheme":"kgate","key_bits":128,"classes":128}"#,
            r#"{"kind":"protect","bench":"x","key_bits":0}"#,
            r#"{"kind":"protect","bench":"x","key_bits":8,"variant":"turbo"}"#,
        ];
        for b in bad {
            let j = orap_bench::json::parse(b).unwrap();
            assert!(JobSpec::parse(&j).is_err(), "{b} must be rejected");
        }
    }

    #[test]
    fn parse_accepts_all_kinds() {
        let ok = [
            (r#"{"kind":"lock","bench":"INPUT(a)","scheme":"wll","key_bits":6,"seed":3}"#, "lock"),
            (r#"{"kind":"attack","target":"abc","attack":"sat"}"#, "attack"),
            (r#"{"kind":"attack","target":"abc","attack":"appsat","query_budget":64}"#, "attack"),
            (r#"{"kind":"attack","target":"abc","attack":"double_dip"}"#, "attack"),
            (r#"{"kind":"attack","target":"abc","attack":"sensitization"}"#, "attack"),
            (r#"{"kind":"lock","bench":"x","scheme":"sfll","key_bits":4,"hamming_distance":1}"#, "lock"),
            (r#"{"kind":"lock","bench":"x","scheme":"kgate","key_bits":12,"classes":4}"#, "lock"),
            (r#"{"kind":"lock","bench":"x","scheme":"scan_obf","key_bits":8,"seed":3}"#, "lock"),
            (r#"{"kind":"attack","target":"abc","attack":"dyn_unlock"}"#, "attack"),
            (r#"{"kind":"protect","bench":"x","key_bits":8,"variant":"basic"}"#, "protect"),
            (r#"{"kind":"verify","target":"abc","key":"0110"}"#, "verify"),
            (r#"{"kind":"atpg","bench":"INPUT(a)"}"#, "atpg"),
            (r#"{"kind":"sleep","ms":5}"#, "sleep"),
        ];
        for (text, kind) in ok {
            let j = orap_bench::json::parse(text).unwrap();
            assert_eq!(JobSpec::parse(&j).unwrap().kind(), kind);
        }
    }

    #[test]
    fn bench_hash_is_formatting_independent() {
        let state = ServeState::new(0, 0);
        let canonical = netlist::bench::write(&netlist::samples::c17());
        let noisy = format!("# a comment\n\n{canonical}\n# trailing\n");
        let a = state.circuit_artifact(&canonical).unwrap();
        let b = state.circuit_artifact(&noisy).unwrap();
        assert_eq!(a.id, b.id);
        let s = state.circuits.stats();
        assert_eq!((s.builds, s.hits), (1, 1), "second parse must hit");
    }
}
