//! A blocking client for the `ORP1` protocol — the reference "second
//! implementation" of DESIGN.md §10 that the load harness and the tests
//! drive. Request ids are assigned per connection, starting at 1.

use std::io;
use std::net::TcpStream;
use std::time::Duration;

use orap_bench::json::{Json, ToJson};

use crate::proto::{self, FrameRead};

/// One connection to a daemon.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

/// Client-side failure: transport, framing, or a server error response.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server broke framing or sent unparseable JSON.
    Protocol(String),
    /// The server answered `ok:false` with this `(code, error)`.
    Server(u64, String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Server(code, m) => write!(f, "server error {code}: {m}"),
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:4615`).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream, next_id: 1 })
    }

    /// Sends `fields` as a request (the `id` is added here) and returns the
    /// server's response object.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] when the response is `ok:false`; transport
    /// and framing errors otherwise.
    pub fn request(&mut self, op: &str, fields: Vec<(String, Json)>) -> Result<Json, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let mut obj = vec![
            ("id".to_string(), id.to_json()),
            ("op".to_string(), op.to_json()),
        ];
        obj.extend(fields);
        proto::write_frame(&mut self.stream, Json::Object(obj).compact().as_bytes())?;
        let payload = match proto::read_frame(&mut self.stream)? {
            FrameRead::Payload(p) => p,
            FrameRead::Eof => {
                return Err(ClientError::Protocol("connection closed mid-request".into()))
            }
            FrameRead::Malformed(why) => return Err(ClientError::Protocol(why.to_string())),
        };
        let text = std::str::from_utf8(&payload)
            .map_err(|_| ClientError::Protocol("response is not UTF-8".into()))?;
        let msg = orap_bench::json::parse(text)
            .map_err(|e| ClientError::Protocol(format!("bad response json: {e}")))?;
        if proto::get(&msg, "ok").and_then(proto::as_bool) != Some(true) {
            let code = proto::get_u64(&msg, "code").unwrap_or(0);
            let err = proto::get_str(&msg, "error").unwrap_or("").to_string();
            return Err(ClientError::Server(code, err));
        }
        Ok(msg)
    }

    /// `ping`; returns the server identity string.
    ///
    /// # Errors
    ///
    /// See [`Self::request`].
    pub fn ping(&mut self) -> Result<String, ClientError> {
        let r = self.request("ping", Vec::new())?;
        Ok(proto::get_str(&r, "server").unwrap_or("").to_string())
    }

    /// Submits a raw job object; returns the job id.
    ///
    /// # Errors
    ///
    /// See [`Self::request`].
    pub fn submit(&mut self, job: Json) -> Result<u64, ClientError> {
        self.submit_with(job, None, None)
    }

    /// Submits with optional priority (`"high"`/`"normal"`/`"low"`) and
    /// timeout; returns the job id.
    ///
    /// # Errors
    ///
    /// See [`Self::request`].
    pub fn submit_with(
        &mut self,
        job: Json,
        priority: Option<&str>,
        timeout: Option<Duration>,
    ) -> Result<u64, ClientError> {
        let mut fields = vec![("job".to_string(), job)];
        if let Some(p) = priority {
            fields.push(("priority".to_string(), p.to_json()));
        }
        if let Some(t) = timeout {
            fields.push(("timeout_ms".to_string(), (t.as_millis() as u64).to_json()));
        }
        let r = self.request("submit", fields)?;
        proto::get_u64(&r, "job_id")
            .ok_or_else(|| ClientError::Protocol("submit response missing job_id".into()))
    }

    /// Submits a `lock` job.
    ///
    /// # Errors
    ///
    /// See [`Self::request`].
    pub fn submit_lock(
        &mut self,
        bench: &str,
        scheme: &str,
        key_bits: usize,
        seed: u64,
    ) -> Result<u64, ClientError> {
        self.submit(orap_bench::json_object! {
            kind: "lock", bench: bench, scheme: scheme, key_bits: key_bits, seed: seed,
        })
    }

    /// Submits an `attack` job against a locked artifact.
    ///
    /// # Errors
    ///
    /// See [`Self::request`].
    pub fn submit_attack(&mut self, target: &str, attack: &str) -> Result<u64, ClientError> {
        self.submit(orap_bench::json_object! { kind: "attack", target: target, attack: attack })
    }

    /// Submits a `verify` job for a candidate key bitstring.
    ///
    /// # Errors
    ///
    /// See [`Self::request`].
    pub fn submit_verify(&mut self, target: &str, key: &str) -> Result<u64, ClientError> {
        self.submit(orap_bench::json_object! { kind: "verify", target: target, key: key })
    }

    /// Blocks until the job is terminal (`result` op); returns the full
    /// response object (`state`, and `result`/`error`).
    ///
    /// # Errors
    ///
    /// See [`Self::request`].
    pub fn wait_result(&mut self, job_id: u64) -> Result<Json, ClientError> {
        self.request("result", vec![("job_id".to_string(), job_id.to_json())])
    }

    /// Non-blocking `status` snapshot of one job.
    ///
    /// # Errors
    ///
    /// See [`Self::request`].
    pub fn status(&mut self, job_id: u64) -> Result<Json, ClientError> {
        self.request("status", vec![("job_id".to_string(), job_id.to_json())])
    }

    /// Cancels a job; returns the state the job was in when the cancel
    /// landed (`"cancelled"` means it never ran).
    ///
    /// # Errors
    ///
    /// See [`Self::request`].
    pub fn cancel(&mut self, job_id: u64) -> Result<String, ClientError> {
        let r = self.request("cancel", vec![("job_id".to_string(), job_id.to_json())])?;
        Ok(proto::get_str(&r, "state").unwrap_or("").to_string())
    }

    /// Subscribes to a job's progress stream from event cursor `from` and
    /// drains it to completion: returns the pushed `(seq, event)` frames
    /// plus the final `done` frame (`state`, `events`, `dropped`).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with code 200 for an unknown job, 201 for a
    /// cursor past the end of a closed stream; transport errors otherwise.
    pub fn subscribe(&mut self, job_id: u64, from: u64) -> Result<(Vec<(u64, Json)>, Json), ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let obj = vec![
            ("id".to_string(), id.to_json()),
            ("op".to_string(), "subscribe".to_json()),
            ("job_id".to_string(), job_id.to_json()),
            ("from".to_string(), from.to_json()),
        ];
        proto::write_frame(&mut self.stream, Json::Object(obj).compact().as_bytes())?;
        let mut events = Vec::new();
        loop {
            let payload = match proto::read_frame(&mut self.stream)? {
                FrameRead::Payload(p) => p,
                FrameRead::Eof => {
                    return Err(ClientError::Protocol("connection closed mid-subscribe".into()))
                }
                FrameRead::Malformed(why) => return Err(ClientError::Protocol(why.to_string())),
            };
            let text = std::str::from_utf8(&payload)
                .map_err(|_| ClientError::Protocol("response is not UTF-8".into()))?;
            let msg = orap_bench::json::parse(text)
                .map_err(|e| ClientError::Protocol(format!("bad response json: {e}")))?;
            if proto::get(&msg, "ok").and_then(proto::as_bool) != Some(true) {
                let code = proto::get_u64(&msg, "code").unwrap_or(0);
                let err = proto::get_str(&msg, "error").unwrap_or("").to_string();
                return Err(ClientError::Server(code, err));
            }
            if proto::get(&msg, "done").and_then(proto::as_bool) == Some(true) {
                return Ok((events, msg));
            }
            let seq = proto::get_u64(&msg, "seq")
                .ok_or_else(|| ClientError::Protocol("subscribe frame missing seq".into()))?;
            let event = proto::get(&msg, "event")
                .cloned()
                .ok_or_else(|| ClientError::Protocol("subscribe frame missing event".into()))?;
            events.push((seq, event));
        }
    }

    /// Daemon counters (`stats` op): queue + both caches.
    ///
    /// # Errors
    ///
    /// See [`Self::request`].
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.request("stats", Vec::new())
    }

    /// Asks the daemon to shut down (`drain` keeps queued jobs running).
    /// The server closes the connection after answering.
    ///
    /// # Errors
    ///
    /// See [`Self::request`].
    pub fn shutdown(&mut self, drain: bool) -> Result<(), ClientError> {
        self.request("shutdown", vec![("drain".to_string(), drain.to_json())])?;
        Ok(())
    }
}
