//! Locking-as-a-service: a long-running, std-only daemon exposing the
//! workspace's lock / attack / verify / ATPG engines as asynchronous jobs
//! over a length-prefixed TCP protocol.
//!
//! The OraP paper's thesis is that the *oracle* is the asset to protect,
//! which makes the oracle-access path a first-class system component. This
//! crate is that path: a service surface through which many concurrent
//! tenants submit locking workloads, while the correct keys never leave the
//! server — clients observe only what an attacker could (recovered keys,
//! verification verdicts), mirroring the paper's threat model.
//!
//! Architecture (specified precisely in DESIGN.md §10):
//!
//! - [`proto`]: the wire format — `ORP1`-magic frames carrying compact
//!   JSON, with a golden-transcript test pinning the bytes to the spec.
//! - [`queue`]: a priority job queue with cancellation, per-job timeouts
//!   and a bounded worker pool run on [`exec::Pool`] (one long-lived
//!   `par_map` task per worker).
//! - [`cache`]: a content-hashed artifact cache holding
//!   `Arc<netlist::CompiledCircuit>`-backed artifacts shared across
//!   concurrent requests, with hit/miss/coalesced/eviction counters and
//!   single-flight builds (N concurrent requests for the same uncached
//!   circuit compile it exactly once).
//! - [`jobs`]: the job kinds and their adapters over the shared artifacts.
//! - [`server`] / [`client`]: the daemon loop and a small blocking client
//!   used by the load harness, the golden tests and `ci.sh`.
//!
//! Binaries: `serve_daemon` (the daemon) and `serve_load` (the load-test
//! harness replaying concurrent lock→attack→verify sessions and writing
//! throughput + latency percentiles to `results/BENCH_serve.json`; see
//! EXPERIMENTS.md "Serving").
//!
//! # Example
//!
//! ```
//! use serve::server::{Server, ServerConfig};
//! use serve::client::Client;
//!
//! let mut handle = Server::start(ServerConfig::default()).expect("bind loopback");
//! let mut client = Client::connect(&format!("127.0.0.1:{}", handle.port())).unwrap();
//! let bench = netlist::bench::write(&netlist::samples::c17());
//! let job = client.submit_lock(&bench, "rll", 4, 7).unwrap();
//! let done = client.wait_result(job).unwrap();
//! assert_eq!(serve::proto::get_str(&done, "state"), Some("done"));
//! handle.stop();
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod hash;
pub mod jobs;
pub mod proto;
pub mod queue;
pub mod server;
