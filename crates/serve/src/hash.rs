//! Content hashing for artifact identities.
//!
//! Artifacts are addressed by the FNV-1a 64-bit hash of their canonical
//! byte content (for circuits: the `.bench` text as re-emitted by
//! [`netlist::bench::write`], so formatting differences in client input do
//! not split cache entries). FNV-1a is not collision-resistant against an
//! adversary; it is used here as a *cache key*, not a security boundary —
//! the protocol spec (DESIGN.md §10) calls this out.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Extends an FNV-1a state with more bytes (for multi-part identities such
/// as a lock artifact: source hash ⊕ scheme ⊕ key width ⊕ seed).
pub fn fnv1a64_extend(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The wire form of an artifact id: 16 lowercase hex digits.
pub fn hex16(h: u64) -> String {
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn extend_matches_concatenation() {
        let whole = fnv1a64(b"hello world");
        let split = fnv1a64_extend(fnv1a64(b"hello "), b"world");
        assert_eq!(whole, split);
    }

    #[test]
    fn hex_form_is_16_lowercase_digits() {
        assert_eq!(hex16(0), "0000000000000000");
        assert_eq!(hex16(0xdeadbeef), "00000000deadbeef");
        assert_eq!(hex16(fnv1a64(b"foobar")), "85944171f73967e8");
    }
}
