//! Concurrency contracts of the daemon: priority ordering, cancellation,
//! timeouts, single-flight compilation under a TCP thundering herd, and
//! graceful drain on shutdown.

use std::sync::Arc;
use std::time::Duration;

use orap_bench::json_object;
use serve::client::{Client, ClientError};
use serve::proto;
use serve::queue::{JobQueue, JobState, Priority};
use serve::server::{Server, ServerConfig};

fn start(workers: usize) -> (serve::server::ServerHandle, String) {
    let handle = Server::start(ServerConfig {
        workers,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = format!("127.0.0.1:{}", handle.port());
    (handle, addr)
}

fn connect(addr: &str) -> Client {
    Client::connect(addr).expect("connect")
}

/// With one worker occupied by a blocker, later submissions must start in
/// strict priority order (high before normal before low), FIFO within a
/// class — observable through `started_seq`.
#[test]
fn queue_dequeues_in_priority_order() {
    let queue: Arc<JobQueue<u64, ()>> = JobQueue::new(1);
    let runner_queue = Arc::clone(&queue);
    let worker = std::thread::spawn(move || {
        runner_queue.run(|ctx, ms: &u64| {
            ctx.sleep_cancellable(Duration::from_millis(*ms))?;
            Ok(())
        });
    });

    let blocker = queue.submit("sleep", 300, Priority::Normal, None).unwrap();
    // Wait until the blocker actually occupies the worker, so everything
    // below is ordered by the scheduler, not by submission racing.
    while queue.status(blocker).unwrap().state != JobState::Running {
        std::thread::sleep(Duration::from_millis(2));
    }
    let low1 = queue.submit("sleep", 1, Priority::Low, None).unwrap();
    let norm1 = queue.submit("sleep", 1, Priority::Normal, None).unwrap();
    let high1 = queue.submit("sleep", 1, Priority::High, None).unwrap();
    let high2 = queue.submit("sleep", 1, Priority::High, None).unwrap();
    let norm2 = queue.submit("sleep", 1, Priority::Normal, None).unwrap();

    for id in [low1, norm1, high1, high2, norm2] {
        let st = queue.wait_terminal(id, Duration::from_secs(30)).unwrap();
        assert_eq!(st.state, JobState::Done, "job {id}");
    }
    let seq = |id: u64| queue.status(id).unwrap().started_seq;
    assert!(seq(high1) < seq(high2), "FIFO within high");
    assert!(seq(high2) < seq(norm1), "high before normal");
    assert!(seq(norm1) < seq(norm2), "FIFO within normal");
    assert!(seq(norm2) < seq(low1), "normal before low");

    queue.shutdown(false);
    worker.join().unwrap();
}

/// Cancelling a queued job kills it without running; cancelling a running
/// job interrupts it at the next checkpoint.
#[test]
fn cancel_queued_and_running_jobs() {
    let (mut handle, addr) = start(1);
    let mut c = connect(&addr);

    let running = c
        .submit(json_object! { kind: "sleep", ms: 60000u64 })
        .unwrap();
    let queued = c
        .submit(json_object! { kind: "sleep", ms: 60000u64 })
        .unwrap();

    // The queued job never ran: cancel reports it straight to cancelled.
    assert_eq!(c.cancel(queued).unwrap(), "cancelled");
    let st = c.wait_result(queued).unwrap();
    assert_eq!(proto::get_str(&st, "state"), Some("cancelled"));

    // The running job was observed in state running; it must stop at its
    // next 5 ms checkpoint, not after 60 s.
    assert_eq!(c.cancel(running).unwrap(), "running");
    let st = c.wait_result(running).unwrap();
    assert_eq!(proto::get_str(&st, "state"), Some("cancelled"));

    handle.stop();
}

/// A per-job timeout fires while the job runs.
#[test]
fn timeout_interrupts_running_job() {
    let (mut handle, addr) = start(1);
    let mut c = connect(&addr);
    let job = c
        .submit_with(
            json_object! { kind: "sleep", ms: 10000u64 },
            None,
            Some(Duration::from_millis(50)),
        )
        .unwrap();
    let st = c.wait_result(job).unwrap();
    assert_eq!(proto::get_str(&st, "state"), Some("timed_out"));
    handle.stop();
}

/// A short per-job timeout fires *mid-solve* on a SAT attack whose first
/// miter solve alone far outlasts it: the engine layer hands the job
/// deadline to the CDCL conflict-budget hook, so the job lands in
/// `timed_out` promptly instead of grinding through the full attack.
#[test]
fn timeout_interrupts_sat_attack_mid_solve() {
    let (mut handle, addr) = start(1);
    let mut c = connect(&addr);

    // ~20k gates, 32 key bits: each DIP solve is long enough that a
    // stage-boundary checkpoint would be far too coarse to honour a 200 ms
    // deadline.
    let comb = netlist::generate::random_comb(7, 48, 24, 20_000).unwrap();
    let bench = netlist::bench::write(&comb);
    let job = c.submit_lock(&bench, "rll", 32, 11).unwrap();
    let done = c.wait_result(job).unwrap();
    assert_eq!(proto::get_str(&done, "state"), Some("done"));
    let artifact = proto::get_str(proto::get(&done, "result").unwrap(), "artifact")
        .unwrap()
        .to_string();

    let start = std::time::Instant::now();
    let job = c
        .submit_with(
            orap_bench::json_object! { kind: "attack", target: artifact, attack: "sat" },
            None,
            Some(Duration::from_millis(200)),
        )
        .unwrap();
    let st = c.wait_result(job).unwrap();
    let elapsed = start.elapsed();
    assert_eq!(proto::get_str(&st, "state"), Some("timed_out"));
    assert!(
        elapsed < Duration::from_secs(30),
        "mid-solve timeout took {elapsed:?}"
    );
    handle.stop();
}

/// Thundering herd over TCP: 8 connections submit the identical lock job
/// concurrently; the daemon compiles the circuit once and builds the
/// locked artifact once — every other request coalesces onto those builds.
#[test]
fn concurrent_identical_lock_jobs_compile_once() {
    let (mut handle, addr) = start(4);
    let bench = netlist::bench::write(&netlist::samples::c17());

    const CONNS: usize = 8;
    let artifacts: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CONNS)
            .map(|_| {
                let addr = addr.clone();
                let bench = bench.clone();
                s.spawn(move || {
                    let mut c = connect(&addr);
                    let job = c.submit_lock(&bench, "rll", 4, 7).unwrap();
                    let st = c.wait_result(job).unwrap();
                    assert_eq!(proto::get_str(&st, "state"), Some("done"));
                    let result = proto::get(&st, "result").unwrap();
                    proto::get_str(result, "artifact").unwrap().to_string()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(
        artifacts.iter().all(|a| a == &artifacts[0]),
        "identical jobs must name one artifact"
    );

    let mut c = connect(&addr);
    let stats = c.stats().unwrap();
    let circuit = proto::get(&stats, "circuit_cache").unwrap();
    let locked = proto::get(&stats, "locked_cache").unwrap();
    assert_eq!(proto::get_u64(circuit, "builds"), Some(1), "one compile");
    assert_eq!(proto::get_u64(locked, "builds"), Some(1), "one lock build");
    let served = proto::get_u64(circuit, "hits").unwrap()
        + proto::get_u64(circuit, "coalesced").unwrap();
    assert_eq!(served as usize, CONNS - 1, "everyone else shared it");

    handle.stop();
}

/// `shutdown` with drain: queued jobs run to completion, new submissions
/// are rejected with code 300, and the daemon then exits.
#[test]
fn graceful_shutdown_drains_queued_jobs() {
    let (mut handle, addr) = start(2);
    let mut submitter = connect(&addr);
    let mut poller = connect(&addr);

    let jobs: Vec<u64> = (0..6)
        .map(|_| {
            submitter
                .submit(json_object! { kind: "sleep", ms: 100u64 })
                .unwrap()
        })
        .collect();

    submitter.shutdown(true).unwrap();

    // Submitting during the drain is rejected with SHUTTING_DOWN.
    match poller.submit(json_object! { kind: "sleep", ms: 1u64 }) {
        Err(ClientError::Server(code, _)) => assert_eq!(code, 300),
        other => panic!("expected code 300, got {other:?}"),
    }

    // Every job submitted before the shutdown still completes.
    for id in jobs {
        let st = poller.wait_result(id).unwrap();
        assert_eq!(proto::get_str(&st, "state"), Some("done"), "job {id}");
    }
    drop(poller);
    handle.wait();
}
