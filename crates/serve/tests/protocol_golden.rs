//! Byte-exact conformance between DESIGN.md §10 and the wire protocol.
//!
//! The spec embeds ```golden-transcript``` blocks: hex dumps of complete
//! frames, `>` for client→server and `<` for server→client, indented
//! lines continuing the current frame and `#` lines as comments. This test
//! parses those blocks out of DESIGN.md and replays each one against a
//! fresh single-worker daemon, comparing every server frame byte for byte
//! — so the document cannot drift from the code in either direction.
//!
//! Regenerating after an intentional protocol change:
//!
//! ```text
//! ORAP_GOLDEN_REGEN=1 cargo test -p serve --test protocol_golden -- --ignored --nocapture
//! ```
//!
//! prints fresh ready-to-paste blocks.

use std::io::Write as _;
use std::net::TcpStream;

use orap_bench::json::{Json, ToJson};
use orap_bench::json_object;
use serve::proto::{self, FrameRead};
use serve::server::{Server, ServerConfig, ServerHandle};

/// One frame of a transcript.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Entry {
    Client(Vec<u8>),
    Server(Vec<u8>),
}

/// Extracts every ```golden-transcript``` block from `text` as
/// `(scenario_name, entries)`.
fn parse_blocks(text: &str) -> Vec<(String, Vec<Entry>)> {
    let mut blocks = Vec::new();
    let mut in_block = false;
    let mut name = String::new();
    let mut entries: Vec<Entry> = Vec::new();
    let mut current: Option<(bool, String)> = None; // (is_client, hex)

    let flush_current = |current: &mut Option<(bool, String)>, entries: &mut Vec<Entry>| {
        if let Some((is_client, hex)) = current.take() {
            let bytes = decode_hex(&hex)
                .unwrap_or_else(|| panic!("bad hex in transcript frame: {hex:.40}…"));
            entries.push(if is_client {
                Entry::Client(bytes)
            } else {
                Entry::Server(bytes)
            });
        }
    };

    for line in text.lines() {
        if !in_block {
            if line.trim() == "```golden-transcript" {
                in_block = true;
                name = String::from("unnamed");
                entries = Vec::new();
                current = None;
            }
            continue;
        }
        if line.trim() == "```" {
            flush_current(&mut current, &mut entries);
            blocks.push((std::mem::take(&mut name), std::mem::take(&mut entries)));
            in_block = false;
            continue;
        }
        let trimmed = line.trim_start();
        if trimmed.starts_with('#') {
            if let Some(n) = trimmed.strip_prefix("# scenario:") {
                name = n.trim().to_string();
            }
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('>') {
            flush_current(&mut current, &mut entries);
            current = Some((true, rest.trim().to_string()));
        } else if let Some(rest) = trimmed.strip_prefix('<') {
            flush_current(&mut current, &mut entries);
            current = Some((false, rest.trim().to_string()));
        } else if line.starts_with(' ') || line.starts_with('\t') {
            if let Some((_, hex)) = current.as_mut() {
                hex.push_str(trimmed);
            }
        }
        // Blank lines between frames are allowed and ignored.
    }
    assert!(!in_block, "unterminated golden-transcript block");
    blocks
}

fn decode_hex(s: &str) -> Option<Vec<u8>> {
    let compact: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    if !compact.len().is_multiple_of(2) {
        return None;
    }
    (0..compact.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&compact[i..i + 2], 16).ok())
        .collect()
}

fn encode_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn design_md() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../DESIGN.md");
    std::fs::read_to_string(path).expect("read DESIGN.md")
}

/// A fresh deterministic daemon: one worker, unbounded caches — job ids
/// and artifact ids then depend only on the request sequence.
fn golden_server() -> (ServerHandle, TcpStream) {
    let handle = Server::start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let stream = TcpStream::connect(("127.0.0.1", handle.port())).expect("connect");
    stream.set_nodelay(true).ok();
    (handle, stream)
}

fn read_one_frame(stream: &mut TcpStream) -> Vec<u8> {
    match proto::read_frame(stream).expect("read frame") {
        FrameRead::Payload(p) => {
            let mut full = Vec::with_capacity(8 + p.len());
            full.extend_from_slice(&proto::MAGIC);
            full.extend_from_slice(&(p.len() as u32).to_be_bytes());
            full.extend_from_slice(&p);
            full
        }
        other => panic!("expected a payload frame, got {other:?}"),
    }
}

#[test]
fn design_md_transcripts_replay_byte_exact() {
    let blocks = parse_blocks(&design_md());
    assert!(
        blocks.len() >= 3,
        "DESIGN.md §10 must carry at least the handshake, session and \
         cancellation transcripts (found {})",
        blocks.len()
    );
    for (name, entries) in blocks {
        assert!(!entries.is_empty(), "empty transcript: {name}");
        let (mut handle, mut stream) = golden_server();
        for (i, entry) in entries.iter().enumerate() {
            match entry {
                Entry::Client(bytes) => {
                    stream.write_all(bytes).expect("write client frame");
                    stream.flush().ok();
                }
                Entry::Server(expected) => {
                    let actual = read_one_frame(&mut stream);
                    if &actual != expected {
                        let at = actual
                            .iter()
                            .zip(expected.iter())
                            .position(|(a, b)| a != b)
                            .unwrap_or_else(|| actual.len().min(expected.len()));
                        panic!(
                            "scenario `{name}`, frame {i}: server bytes diverge from \
                             DESIGN.md §10 at offset {at}\n  expected: {}\n  actual:   {}\n\
                             (regen with ORAP_GOLDEN_REGEN=1, see module docs)",
                            encode_hex(expected),
                            encode_hex(&actual),
                        );
                    }
                }
            }
        }
        drop(stream);
        handle.stop();
    }
}

// ---------------------------------------------------------------------
// Regeneration: builds the canonical scenarios programmatically, replays
// them, and prints paste-ready blocks. `#[ignore]`d so the normal run
// only ever *checks*; drift is fixed by consciously re-running this.
// ---------------------------------------------------------------------

fn req(id: u64, op: &str, extra: Vec<(String, Json)>) -> Vec<u8> {
    let mut obj = vec![
        ("id".to_string(), id.to_json()),
        ("op".to_string(), op.to_json()),
    ];
    obj.extend(extra);
    proto::encode(&Json::Object(obj))
}

fn scenario_handshake() -> Vec<Vec<u8>> {
    vec![
        req(1, "ping", vec![]),
        req(2, "frobnicate", vec![]),
        req(3, "submit", vec![]),
        req(4, "status", vec![("job_id".to_string(), 99u64.to_json())]),
    ]
}

fn scenario_session() -> Vec<Vec<u8>> {
    let bench = netlist::bench::write(&netlist::samples::c17());
    vec![
        req(
            1,
            "submit",
            vec![(
                "job".to_string(),
                json_object! { kind: "lock", bench: bench, scheme: "rll", key_bits: 4u64, seed: 7u64 },
            )],
        ),
        req(2, "result", vec![("job_id".to_string(), 1u64.to_json())]),
        req(
            3,
            "submit",
            vec![(
                "job".to_string(),
                json_object! { kind: "attack", target: "__ARTIFACT__", attack: "sat" },
            )],
        ),
        req(4, "result", vec![("job_id".to_string(), 2u64.to_json())]),
        req(
            5,
            "submit",
            vec![(
                "job".to_string(),
                json_object! { kind: "verify", target: "__ARTIFACT__", key: "__KEY__" },
            )],
        ),
        req(6, "result", vec![("job_id".to_string(), 3u64.to_json())]),
    ]
}

fn scenario_subscribe() -> Vec<Vec<u8>> {
    let bench = netlist::bench::write(&netlist::samples::c17());
    vec![
        req(
            1,
            "submit",
            vec![(
                "job".to_string(),
                json_object! { kind: "lock", bench: bench, scheme: "rll", key_bits: 4u64, seed: 7u64 },
            )],
        ),
        req(2, "result", vec![("job_id".to_string(), 1u64.to_json())]),
        req(
            3,
            "submit",
            vec![(
                "job".to_string(),
                json_object! { kind: "attack", target: "__ARTIFACT__", attack: "sat" },
            )],
        ),
        req(4, "result", vec![("job_id".to_string(), 2u64.to_json())]),
        // Multi-frame: replays the finished attack's progress stream.
        req(
            5,
            "subscribe",
            vec![
                ("job_id".to_string(), 2u64.to_json()),
                ("from".to_string(), 0u64.to_json()),
            ],
        ),
        req(6, "subscribe", vec![("job_id".to_string(), 99u64.to_json())]),
    ]
}

fn scenario_cancel() -> Vec<Vec<u8>> {
    vec![
        req(
            1,
            "submit",
            vec![("job".to_string(), json_object! { kind: "sleep", ms: 60000u64 })],
        ),
        req(
            2,
            "submit",
            vec![("job".to_string(), json_object! { kind: "sleep", ms: 60000u64 })],
        ),
        req(3, "cancel", vec![("job_id".to_string(), 2u64.to_json())]),
        req(4, "result", vec![("job_id".to_string(), 2u64.to_json())]),
        req(5, "shutdown", vec![("drain".to_string(), false.to_json())]),
    ]
}

/// Substitutes placeholders in a client frame with values learned from
/// earlier server responses, re-encoding the frame.
fn substitute(frame: &[u8], artifact: &str, key: &str) -> Vec<u8> {
    let text = std::str::from_utf8(&frame[8..]).expect("utf8");
    if !text.contains("__ARTIFACT__") && !text.contains("__KEY__") {
        return frame.to_vec();
    }
    let replaced = text.replace("__ARTIFACT__", artifact).replace("__KEY__", key);
    let json = orap_bench::json::parse(&replaced).expect("placeholder json");
    proto::encode(&json)
}

fn print_block(name: &str, workers: usize, entries: &[Entry]) {
    println!("```golden-transcript");
    println!("# scenario: {name}");
    println!("# fresh daemon, workers={workers}, unbounded caches");
    for entry in entries {
        let (tag, bytes) = match entry {
            Entry::Client(b) => ('>', b),
            Entry::Server(b) => ('<', b),
        };
        let hex = encode_hex(bytes);
        let mut chunks = hex.as_bytes().chunks(72);
        let first = chunks.next().unwrap_or_default();
        println!("{tag} {}", std::str::from_utf8(first).unwrap());
        for c in chunks {
            println!("  {}", std::str::from_utf8(c).unwrap());
        }
    }
    println!("```");
    println!();
}

#[test]
#[ignore = "regeneration helper; run with ORAP_GOLDEN_REGEN=1 --nocapture"]
fn regen_golden_transcripts() {
    if std::env::var("ORAP_GOLDEN_REGEN").is_err() {
        eprintln!("set ORAP_GOLDEN_REGEN=1 to print fresh transcripts");
        return;
    }
    for (name, frames) in [
        ("handshake and protocol errors", scenario_handshake()),
        ("full lock -> attack -> verify session", scenario_session()),
        ("progress subscription replay", scenario_subscribe()),
        ("cancellation and immediate shutdown", scenario_cancel()),
    ] {
        let (mut handle, mut stream) = golden_server();
        let mut entries = Vec::new();
        let mut artifact = String::new();
        let mut recovered_key = String::new();
        for frame in frames {
            let frame = substitute(&frame, &artifact, &recovered_key);
            let is_subscribe =
                std::str::from_utf8(&frame[8..]).unwrap().contains("\"op\":\"subscribe\"");
            stream.write_all(&frame).expect("write");
            entries.push(Entry::Client(frame));
            // `subscribe` is the one multi-frame op: keep reading until the
            // final `done` frame (or a single error frame).
            loop {
                let resp = read_one_frame(&mut stream);
                let text = std::str::from_utf8(&resp[8..]).unwrap().to_string();
                let json = orap_bench::json::parse(&text).unwrap();
                if let Some(result) = proto::get(&json, "result") {
                    if let Some(a) = proto::get_str(result, "artifact") {
                        artifact = a.to_string();
                    }
                    if let Some(k) = proto::get_str(result, "key") {
                        recovered_key = k.to_string();
                    }
                }
                entries.push(Entry::Server(resp));
                let done = proto::get(&json, "done").and_then(proto::as_bool) == Some(true);
                let ok = proto::get(&json, "ok").and_then(proto::as_bool) == Some(true);
                if !is_subscribe || done || !ok {
                    break;
                }
            }
        }
        print_block(name, 1, &entries);
        drop(stream);
        handle.stop();
    }
}
