//! End-to-end coverage of the job kinds the engine refactor added to the
//! wire protocol: the `sfll` lock scheme, the `appsat` / `double_dip` /
//! `sensitization` attack kinds, the `protect` job, per-attack oracle
//! query budgets, and the `subscribe` progress stream.

use orap_bench::json_object;
use serve::client::{Client, ClientError};
use serve::proto;
use serve::server::{Server, ServerConfig};

fn start(workers: usize) -> (serve::server::ServerHandle, String) {
    let handle = Server::start(ServerConfig {
        workers,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = format!("127.0.0.1:{}", handle.port());
    (handle, addr)
}

fn connect(addr: &str) -> Client {
    Client::connect(addr).expect("connect")
}

/// Locks with `sfll` and runs one attack kind; returns the terminal
/// `result` object.
fn sfll_then_attack(c: &mut Client, attack: &str) -> (String, orap_bench::json::Json) {
    let bench = netlist::bench::write(&netlist::samples::ripple_adder(3));
    let job = c
        .submit(json_object! {
            kind: "lock", bench: bench, scheme: "sfll", key_bits: 4u64,
            hamming_distance: 1u64, seed: 5u64,
        })
        .unwrap();
    let done = c.wait_result(job).unwrap();
    assert_eq!(proto::get_str(&done, "state"), Some("done"), "{attack}: lock");
    let result = proto::get(&done, "result").unwrap();
    assert_eq!(proto::get_str(result, "scheme"), Some("sfll"));
    let artifact = proto::get_str(result, "artifact").unwrap().to_string();

    let job = c.submit_attack(&artifact, attack).unwrap();
    let done = c.wait_result(job).unwrap();
    assert_eq!(proto::get_str(&done, "state"), Some("done"), "{attack}: attack");
    (artifact, proto::get(&done, "result").unwrap().clone())
}

/// Every new attack kind runs end to end against an `sfll` artifact, with
/// `oracle_queries` present and truthful-looking in each result.
#[test]
fn new_attack_kinds_run_against_sfll_artifact() {
    let (mut handle, addr) = start(2);
    let mut c = connect(&addr);

    for attack in ["appsat", "double_dip", "sensitization"] {
        let (artifact, result) = sfll_then_attack(&mut c, attack);
        let queries = proto::get_u64(&result, "oracle_queries")
            .unwrap_or_else(|| panic!("{attack}: oracle_queries missing"));
        // Sensitization may be inconclusive on SFLL; the others must
        // recover a key, and double-dip's key must verify exactly.
        let key = proto::get_str(&result, "key");
        if attack != "sensitization" {
            assert!(queries > 0, "{attack}: zero oracle queries");
            let key = key.unwrap_or_else(|| panic!("{attack}: no key: {}", result.compact()));
            if attack == "double_dip" {
                let job = c.submit_verify(&artifact, key).unwrap();
                let done = c.wait_result(job).unwrap();
                let vr = proto::get(&done, "result").unwrap();
                assert_eq!(
                    proto::get(vr, "exact").and_then(proto::as_bool),
                    Some(true),
                    "double_dip key must be exact"
                );
            }
        }
    }
    handle.stop();
}

/// The `protect` job builds an OraP-protected artifact that the normal
/// attack/verify path can then target — and a repeat submission hits the
/// artifact cache yet reports the same schedule summary.
#[test]
fn protect_job_yields_attackable_artifact() {
    let (mut handle, addr) = start(2);
    let mut c = connect(&addr);
    let bench = netlist::bench::write(&netlist::samples::ripple_adder(8));

    let submit_protect = |c: &mut Client| {
        c.submit(json_object! {
            kind: "protect", bench: bench.clone(), key_bits: 6u64,
            variant: "basic", seed: 5u64,
        })
        .unwrap()
    };
    let done = { let j = submit_protect(&mut c); c.wait_result(j).unwrap() };
    assert_eq!(proto::get_str(&done, "state"), Some("done"));
    let result = proto::get(&done, "result").unwrap().clone();
    assert_eq!(proto::get_str(&result, "scheme"), Some("orap"));
    assert_eq!(proto::get_str(&result, "variant"), Some("basic"));
    let schedule = proto::get(&result, "schedule").expect("schedule summary");
    assert!(proto::get_u64(schedule, "unlock_cycles").unwrap() > 0);
    assert!(proto::get_u64(schedule, "hardware_gates").unwrap() > 0);
    let artifact = proto::get_str(&result, "artifact").unwrap().to_string();

    // The protected netlist is WLL-locked: the SAT attack must recover an
    // exactly-correct key through the standard oracle path.
    let job = c.submit_attack(&artifact, "sat").unwrap();
    let done = c.wait_result(job).unwrap();
    assert_eq!(proto::get_str(&done, "state"), Some("done"));
    let ar = proto::get(&done, "result").unwrap();
    assert_eq!(proto::get(ar, "succeeded").and_then(proto::as_bool), Some(true));
    let key = proto::get_str(ar, "key").unwrap().to_string();
    let job = c.submit_verify(&artifact, &key).unwrap();
    let done = c.wait_result(job).unwrap();
    let vr = proto::get(&done, "result").unwrap();
    assert_eq!(proto::get(vr, "exact").and_then(proto::as_bool), Some(true));

    // Cache hit: same artifact id, same schedule numbers, one build.
    let done = { let j = submit_protect(&mut c); c.wait_result(j).unwrap() };
    let again = proto::get(&done, "result").unwrap();
    assert_eq!(proto::get_str(again, "artifact"), Some(artifact.as_str()));
    assert_eq!(proto::get(again, "schedule"), Some(schedule));
    let stats = c.stats().unwrap();
    let locked = proto::get(&stats, "locked_cache").unwrap();
    assert_eq!(proto::get_u64(locked, "builds"), Some(1), "one protect build");

    handle.stop();
}

/// A `query_budget` on an attack job stops it at the oracle boundary: the
/// job still completes (`done`), reporting the budget-exhaustion failure
/// and exactly the budgeted number of queries.
#[test]
fn attack_query_budget_is_enforced_at_oracle_boundary() {
    let (mut handle, addr) = start(1);
    let mut c = connect(&addr);
    let bench = netlist::bench::write(&netlist::samples::ripple_adder(4));
    let job = c.submit_lock(&bench, "rll", 8, 3).unwrap();
    let done = c.wait_result(job).unwrap();
    let artifact = proto::get_str(proto::get(&done, "result").unwrap(), "artifact")
        .unwrap()
        .to_string();

    let job = c
        .submit(json_object! {
            kind: "attack", target: artifact, attack: "sat", query_budget: 2u64,
        })
        .unwrap();
    let done = c.wait_result(job).unwrap();
    assert_eq!(proto::get_str(&done, "state"), Some("done"));
    let result = proto::get(&done, "result").unwrap();
    assert_eq!(proto::get(result, "succeeded").and_then(proto::as_bool), Some(false));
    assert_eq!(
        proto::get_str(result, "failure"),
        Some("oracle query budget exhausted")
    );
    assert_eq!(proto::get_u64(result, "oracle_queries"), Some(2));
    handle.stop();
}

/// `subscribe` replays the full progress stream of a finished attack job:
/// job phases, engine stages, and per-iteration milestones whose ledger
/// count matches the result's `oracle_queries`.
#[test]
fn subscribe_replays_attack_progress_stream() {
    let (mut handle, addr) = start(1);
    let mut c = connect(&addr);
    let bench = netlist::bench::write(&netlist::samples::ripple_adder(4));
    let job = c.submit_lock(&bench, "rll", 8, 3).unwrap();
    let done = c.wait_result(job).unwrap();
    let artifact = proto::get_str(proto::get(&done, "result").unwrap(), "artifact")
        .unwrap()
        .to_string();
    let job = c.submit_attack(&artifact, "sat").unwrap();
    let done = c.wait_result(job).unwrap();
    let result = proto::get(&done, "result").unwrap();
    let queries = proto::get_u64(result, "oracle_queries").unwrap();

    let (events, fin) = c.subscribe(job, 0).unwrap();
    assert_eq!(proto::get(&fin, "done").and_then(proto::as_bool), Some(true));
    assert_eq!(proto::get_str(&fin, "state"), Some("done"));
    assert_eq!(proto::get_u64(&fin, "events"), Some(events.len() as u64));
    assert_eq!(proto::get_u64(&fin, "dropped"), Some(0));
    // Sequence numbers are contiguous from the cursor.
    for (i, (seq, _)) in events.iter().enumerate() {
        assert_eq!(*seq, i as u64);
    }
    let kinds: Vec<&str> = events
        .iter()
        .filter_map(|(_, e)| proto::get_str(e, "type"))
        .collect();
    assert_eq!(kinds.iter().filter(|k| **k == "phase").count(), 2, "oracle+attack phases");
    assert!(kinds.contains(&"stage"), "engine stage events present");
    let milestones: Vec<_> = events
        .iter()
        .filter(|(_, e)| proto::get_str(e, "type") == Some("milestone"))
        .collect();
    assert!(!milestones.is_empty(), "per-iteration milestones present");
    let last = &milestones.last().unwrap().1;
    assert_eq!(proto::get_u64(last, "oracle_queries"), Some(queries));

    // Resuming from a mid-stream cursor yields exactly the tail.
    let (tail, _) = c.subscribe(job, 2).unwrap();
    assert_eq!(tail.len(), events.len() - 2);
    assert_eq!(tail.first().map(|(s, _)| *s), Some(2));

    // Error paths: unknown job (200) and a cursor past a closed stream (201).
    match c.subscribe(9999, 0) {
        Err(ClientError::Server(code, _)) => assert_eq!(code, 200),
        other => panic!("expected code 200, got {other:?}"),
    }
    match c.subscribe(job, events.len() as u64 + 50) {
        Err(ClientError::Server(code, _)) => assert_eq!(code, 201),
        other => panic!("expected code 201, got {other:?}"),
    }
    handle.stop();
}

/// `subscribe` on a *running* job streams live: the subscriber sees the
/// sleep job's phase event while it runs, then the terminal frame reports
/// `cancelled` once another connection cancels it.
#[test]
fn subscribe_streams_live_and_observes_cancellation() {
    let (mut handle, addr) = start(1);
    let mut submitter = connect(&addr);
    let job = submitter
        .submit(json_object! { kind: "sleep", ms: 60000u64 })
        .unwrap();

    let addr2 = addr.clone();
    let sub = std::thread::spawn(move || {
        let mut c = connect(&addr2);
        c.subscribe(job, 0).unwrap()
    });
    // Wait until the job is actually running, then cancel it.
    loop {
        let st = submitter.status(job).unwrap();
        if proto::get_str(&st, "state") == Some("running") {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    submitter.cancel(job).unwrap();
    let (events, fin) = sub.join().unwrap();
    assert_eq!(proto::get_str(&fin, "state"), Some("cancelled"));
    assert_eq!(
        events.iter().filter_map(|(_, e)| proto::get_str(e, "name")).next(),
        Some("sleep"),
        "live phase event observed before cancellation"
    );
    handle.stop();
}
