//! Symbolic GF(2) simulation of the key register and the XOR-tree payload
//! model for threat (d).
//!
//! The paper's threat (d): an attacker who learns the reseeding schedule can
//! symbolically simulate the LFSR — each cell ends up holding a *linear
//! expression* of the seed bits — and implant XOR trees that recompute every
//! key bit from shadow copies of the seeds. The defence is to choose the
//! characteristic polynomial, the number/positions of reseeding points and
//! the free-run gaps so that those linear expressions are dense, making the
//! XOR trees (the Trojan payload) large enough for side-channel detection.
//!
//! [`SymbolicState`] performs that symbolic simulation; [`XorTreeCost`]
//! quantifies the resulting payload, which experiment E5 sweeps.

use crate::gf2::{BitMatrix, BitVec};
use crate::{KeySequence, LfsrConfig, UnlockSchedule};

/// The symbolic state of an LFSR: each cell is a linear expression
/// `row_i · seeds (+ const_i)` over all injected seed bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolicState {
    /// `cells x seed_bits` coefficient matrix.
    coeffs: BitMatrix,
    /// Constant term per cell.
    consts: BitVec,
}

impl SymbolicState {
    /// Symbolically executes `schedule` from the cleared register.
    pub fn of_schedule(schedule: &UnlockSchedule) -> Self {
        let (coeffs, consts) = schedule.seed_to_key_map();
        SymbolicState { coeffs, consts }
    }

    /// The coefficient matrix (cells × seed bits).
    pub fn coefficients(&self) -> &BitMatrix {
        &self.coeffs
    }

    /// Number of seed variables appearing in cell `i`'s expression.
    pub fn terms_of_cell(&self, i: usize) -> usize {
        self.coeffs.row(i).count_ones() + usize::from(self.consts.get(i))
    }

    /// Evaluates the symbolic state for concrete seed bits; must equal the
    /// concrete simulation (property-tested).
    ///
    /// # Panics
    ///
    /// Panics if `seed_bits.len()` differs from the symbolic variable count.
    pub fn eval(&self, seed_bits: &[bool]) -> Vec<bool> {
        let mut v = self.coeffs.mul_vec(&BitVec::from_bools(seed_bits));
        v.xor_assign(&self.consts);
        v.to_bools()
    }

    /// Rank of the seed→key map: how many key bits the seed stream actually
    /// controls.
    pub fn controllability(&self) -> usize {
        self.coeffs.rank()
    }
}

/// Hardware cost of the XOR trees an attacker would need for threat (d).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorTreeCost {
    /// 2-input XOR gates summed over all cells (`terms - 1` per cell).
    pub xor_gates: usize,
    /// 2-to-1 multiplexers to splice the trees into the key gates or scan
    /// cells (one per key bit).
    pub muxes: usize,
    /// Extra registers the attacker needs: every seed must be held
    /// concurrently (the paper: "this attack requires separate registers for
    /// every seed in the key sequence").
    pub shadow_flipflops: usize,
    /// Densest single expression (worst-case tree depth driver).
    pub max_terms_per_cell: usize,
}

impl XorTreeCost {
    /// Computes the payload cost for a schedule.
    pub fn of_schedule(schedule: &UnlockSchedule) -> Self {
        let sym = SymbolicState::of_schedule(schedule);
        let width = schedule.config().width;
        let mut xor_gates = 0usize;
        let mut max_terms = 0usize;
        for i in 0..width {
            let t = sym.terms_of_cell(i);
            max_terms = max_terms.max(t);
            xor_gates += t.saturating_sub(1);
        }
        XorTreeCost {
            xor_gates,
            muxes: width,
            shadow_flipflops: schedule.sequence().stored_bits(),
            max_terms_per_cell: max_terms,
        }
    }

    /// Total payload gate-equivalents (1 per XOR, 1 per mux; a flip-flop
    /// counted as 4 gate-equivalents, the usual DFF≈4×NAND2 figure).
    pub fn gate_equivalents(&self) -> usize {
        self.xor_gates + self.muxes + 4 * self.shadow_flipflops
    }
}

/// Convenience: builds a schedule with `num_seeds` pseudorandom seeds and a
/// constant free-run `gap`, and returns its XOR-tree cost — the sweep
/// primitive behind experiment E5.
pub fn sweep_point(
    width: usize,
    tap_spacing: usize,
    reseed_points: usize,
    num_seeds: usize,
    gap: usize,
    seed: u64,
) -> XorTreeCost {
    let points: Vec<usize> = if reseed_points >= width {
        (0..width).collect()
    } else {
        // Evenly spread the points.
        (0..reseed_points)
            .map(|i| i * width / reseed_points)
            .collect()
    };
    let cfg = LfsrConfig::with_reseed_points(width, tap_spacing, points);
    let mut state = seed | 1;
    let mut bit = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state & 1 == 1
    };
    let seeds: Vec<Vec<bool>> = (0..num_seeds)
        .map(|_| (0..cfg.reseed_points.len()).map(|_| bit()).collect())
        .collect();
    let sched = UnlockSchedule::new(cfg, KeySequence::new(seeds, vec![gap; num_seeds]));
    XorTreeCost::of_schedule(&sched)
}

/// A plain shift register (no feedback mixing): the paper's ablation baseline
/// showing *why* an LFSR is used as the key register. Returns the XOR-tree
/// cost for the same seed schedule applied to a shift register.
pub fn shift_register_cost(width: usize, num_seeds: usize, gap: usize, seed: u64) -> XorTreeCost {
    // A shift register is an "LFSR" whose feedback never reaches meaningful
    // mixing; model it with a single tap at the last cell feeding bit 0 and
    // no other taps, seeds injected at every cell like the LFSR case.
    let cfg = LfsrConfig::new(width, vec![width - 1], (0..width).collect());
    let mut state = seed | 1;
    let mut bit = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state & 1 == 1
    };
    let seeds: Vec<Vec<bool>> = (0..num_seeds)
        .map(|_| (0..width).map(|_| bit()).collect())
        .collect();
    let sched = UnlockSchedule::new(cfg, KeySequence::new(seeds, vec![gap; num_seeds]));
    XorTreeCost::of_schedule(&sched)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_schedule(width: usize, seeds: usize, gap: usize) -> UnlockSchedule {
        let cfg = LfsrConfig::with_tap_spacing(width, 8);
        let mut state = 7u64;
        let mut bit = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state & 1 == 1
        };
        let ss: Vec<Vec<bool>> = (0..seeds)
            .map(|_| (0..width).map(|_| bit()).collect())
            .collect();
        UnlockSchedule::new(cfg, KeySequence::new(ss, vec![gap; seeds]))
    }

    #[test]
    fn symbolic_matches_concrete() {
        let sched = random_schedule(24, 4, 2);
        let sym = SymbolicState::of_schedule(&sched);
        let concat: Vec<bool> = sched.sequence().seeds.iter().flatten().copied().collect();
        assert_eq!(sym.eval(&concat), sched.derive_key());
    }

    #[test]
    fn symbolic_matches_concrete_many_random_seeds() {
        let sched = random_schedule(16, 3, 1);
        let sym = SymbolicState::of_schedule(&sched);
        let mut state = 1234u64;
        let mut bit = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state & 1 == 1
        };
        for _ in 0..20 {
            let seeds: Vec<Vec<bool>> = (0..3).map(|_| (0..16).map(|_| bit()).collect()).collect();
            let flat: Vec<bool> = seeds.iter().flatten().copied().collect();
            let sched2 = UnlockSchedule::new(
                sched.config().clone(),
                KeySequence::new(seeds, sched.sequence().free_runs.clone()),
            );
            assert_eq!(sym.eval(&flat), sched2.derive_key());
        }
    }

    #[test]
    fn full_points_fully_controllable() {
        let sched = random_schedule(32, 2, 3);
        let sym = SymbolicState::of_schedule(&sched);
        assert_eq!(sym.controllability(), 32);
    }

    #[test]
    fn more_seeds_and_gaps_densify_expressions() {
        let light = sweep_point(64, 8, 64, 1, 0, 9);
        let heavy = sweep_point(64, 8, 64, 6, 8, 9);
        assert!(
            heavy.xor_gates > light.xor_gates,
            "heavy {} <= light {}",
            heavy.xor_gates,
            light.xor_gates
        );
    }

    #[test]
    fn lfsr_beats_shift_register_mixing() {
        // The stated reason for the LFSR: it "mixes up" seed values, creating
        // more complex linear expressions than a simple shift register.
        let lfsr = sweep_point(64, 8, 64, 4, 4, 5);
        let sr = shift_register_cost(64, 4, 4, 5);
        assert!(
            lfsr.xor_gates > sr.xor_gates,
            "lfsr {} <= shift register {}",
            lfsr.xor_gates,
            sr.xor_gates
        );
    }

    #[test]
    fn gate_equivalents_accounting() {
        let c = XorTreeCost {
            xor_gates: 10,
            muxes: 4,
            shadow_flipflops: 8,
            max_terms_per_cell: 5,
        };
        assert_eq!(c.gate_equivalents(), 10 + 4 + 32);
    }
}
