//! Dense linear algebra over GF(2).
//!
//! LFSRs are linear circuits: their next state is a linear function of the
//! current state and the injected seed bits. Everything the paper argues
//! about the key register — controllability through reseeding, the size of
//! the XOR trees an attacker would need (threat (d)) — reduces to GF(2)
//! matrix arithmetic, implemented here on `u64`-packed rows.

use std::fmt;

/// A bit vector over GF(2), packed 64 bits per word.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// An all-zero vector of the given length.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Builds from booleans.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut v = BitVec::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            v.set(i, b);
        }
        v
    }

    /// Length in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Flips bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn flip(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] ^= 1u64 << (i % 64);
    }

    /// XOR-accumulates `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn xor_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether all bits are zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Dot product over GF(2) (parity of AND).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn dot(&self, other: &BitVec) -> bool {
        assert_eq!(self.len, other.len, "length mismatch");
        let acc: u64 = self
            .words
            .iter()
            .zip(&other.words)
            .fold(0, |acc, (a, b)| acc ^ (a & b));
        acc.count_ones() % 2 == 1
    }

    /// Iterates over the bits as booleans.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Converts to a `Vec<bool>`.
    pub fn to_bools(&self) -> Vec<bool> {
        self.iter().collect()
    }

    /// Indices of the set bits.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.get(i))
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[")?;
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        write!(f, "]")
    }
}

/// A dense matrix over GF(2), stored row-major as [`BitVec`]s.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    data: Vec<BitVec>,
}

impl BitMatrix {
    /// The `rows x cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        BitMatrix {
            rows,
            cols,
            data: vec![BitVec::zeros(cols); rows],
        }
    }

    /// The `n x n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = BitMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, r: usize, c: usize) -> bool {
        self.data[r].get(c)
    }

    /// Writes entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        self.data[r].set(c, value);
    }

    /// Borrows row `r`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn row(&self, r: usize) -> &BitVec {
        &self.data[r]
    }

    /// Mutably borrows row `r`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn row_mut(&mut self, r: usize) -> &mut BitVec {
        &mut self.data[r]
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn mul_vec(&self, v: &BitVec) -> BitVec {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        let mut out = BitVec::zeros(self.rows);
        for (r, row) in self.data.iter().enumerate() {
            out.set(r, row.dot(v));
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn mul(&self, other: &BitMatrix) -> BitMatrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch");
        let mut out = BitMatrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in self.data[r].ones() {
                let row = other.row(k).clone();
                out.data[r].xor_assign(&row);
            }
        }
        out
    }

    /// XOR-accumulates another matrix.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn xor_assign(&mut self, other: &BitMatrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            a.xor_assign(b);
        }
    }

    /// Rank via Gaussian elimination (destructive on a copy).
    pub fn rank(&self) -> usize {
        let mut m = self.clone();
        let mut rank = 0;
        for col in 0..m.cols {
            if rank == m.rows {
                break;
            }
            let pivot = (rank..m.rows).find(|&r| m.get(r, col));
            if let Some(p) = pivot {
                m.data.swap(rank, p);
                let pivot_row = m.data[rank].clone();
                for r in 0..m.rows {
                    if r != rank && m.get(r, col) {
                        m.data[r].xor_assign(&pivot_row);
                    }
                }
                rank += 1;
            }
        }
        rank
    }

    /// Solves `self * x = b`, returning one solution if consistent.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != rows`.
    pub fn solve(&self, b: &BitVec) -> Option<BitVec> {
        assert_eq!(b.len(), self.rows, "dimension mismatch");
        // Gaussian elimination on the augmented matrix.
        let mut m = self.clone();
        let mut rhs = b.clone();
        let mut pivots: Vec<(usize, usize)> = Vec::new(); // (row, col)
        let mut rank = 0;
        for col in 0..m.cols {
            if rank == m.rows {
                break;
            }
            if let Some(p) = (rank..m.rows).find(|&r| m.get(r, col)) {
                m.data.swap(rank, p);
                let (ra, rb) = (rhs.get(rank), rhs.get(p));
                rhs.set(rank, rb);
                rhs.set(p, ra);
                let pivot_row = m.data[rank].clone();
                let pivot_rhs = rhs.get(rank);
                for r in 0..m.rows {
                    if r != rank && m.get(r, col) {
                        m.data[r].xor_assign(&pivot_row);
                        let v = rhs.get(r) ^ pivot_rhs;
                        rhs.set(r, v);
                    }
                }
                pivots.push((rank, col));
                rank += 1;
            }
        }
        // Inconsistency: a zero row with rhs 1.
        for r in rank..m.rows {
            if rhs.get(r) {
                return None;
            }
        }
        let mut x = BitVec::zeros(m.cols);
        for &(r, c) in &pivots {
            x.set(c, rhs.get(r));
        }
        Some(x)
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{}", u8::from(self.get(r, c)))?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitvec_basics() {
        let mut v = BitVec::zeros(100);
        assert!(v.is_zero());
        v.set(0, true);
        v.set(63, true);
        v.set(64, true);
        v.set(99, true);
        assert_eq!(v.count_ones(), 4);
        assert!(v.get(63));
        assert!(v.get(64));
        v.flip(64);
        assert!(!v.get(64));
        assert_eq!(v.ones().collect::<Vec<_>>(), vec![0, 63, 99]);
    }

    #[test]
    fn bitvec_xor_and_dot() {
        let a = BitVec::from_bools(&[true, true, false, true]);
        let b = BitVec::from_bools(&[true, false, false, true]);
        let mut c = a.clone();
        c.xor_assign(&b);
        assert_eq!(c.to_bools(), vec![false, true, false, false]);
        // dot = parity(11 & 10, ...) -> bits where both set: 0 and 3 -> even
        assert!(!a.dot(&b));
        let d = BitVec::from_bools(&[true, false, false, false]);
        assert!(a.dot(&d));
    }

    #[test]
    fn identity_multiplication() {
        let id = BitMatrix::identity(20);
        let v = BitVec::from_bools(&(0..20).map(|i| i % 3 == 0).collect::<Vec<_>>());
        assert_eq!(id.mul_vec(&v), v);
        assert_eq!(id.mul(&id), id);
    }

    #[test]
    fn matrix_multiply_known() {
        // [[1,1],[0,1]] * [1,0]^T = [1,0]^T; * [0,1]^T = [1,1]^T
        let mut m = BitMatrix::zeros(2, 2);
        m.set(0, 0, true);
        m.set(0, 1, true);
        m.set(1, 1, true);
        assert_eq!(
            m.mul_vec(&BitVec::from_bools(&[true, false])).to_bools(),
            vec![true, false]
        );
        assert_eq!(
            m.mul_vec(&BitVec::from_bools(&[false, true])).to_bools(),
            vec![true, true]
        );
    }

    #[test]
    fn rank_of_identity_and_singular() {
        assert_eq!(BitMatrix::identity(17).rank(), 17);
        let mut m = BitMatrix::zeros(3, 3);
        m.set(0, 0, true);
        m.set(1, 0, true); // duplicate row
        assert_eq!(m.rank(), 1);
        assert_eq!(BitMatrix::zeros(4, 4).rank(), 0);
    }

    #[test]
    fn solve_consistent_system() {
        // x0 ^ x1 = 1; x1 = 1 -> x0 = 0, x1 = 1
        let mut m = BitMatrix::zeros(2, 2);
        m.set(0, 0, true);
        m.set(0, 1, true);
        m.set(1, 1, true);
        let b = BitVec::from_bools(&[true, true]);
        let x = m.solve(&b).expect("consistent");
        assert_eq!(m.mul_vec(&x), b);
        assert_eq!(x.to_bools(), vec![false, true]);
    }

    #[test]
    fn solve_inconsistent_system() {
        // x0 = 0 and x0 = 1
        let mut m = BitMatrix::zeros(2, 1);
        m.set(0, 0, true);
        m.set(1, 0, true);
        let b = BitVec::from_bools(&[false, true]);
        assert_eq!(m.solve(&b), None);
    }

    #[test]
    fn solve_underdetermined_returns_valid_solution() {
        // One equation, three unknowns: x0 ^ x2 = 1.
        let mut m = BitMatrix::zeros(1, 3);
        m.set(0, 0, true);
        m.set(0, 2, true);
        let b = BitVec::from_bools(&[true]);
        let x = m.solve(&b).expect("consistent");
        assert_eq!(m.mul_vec(&x), b);
    }

    #[test]
    fn solve_random_roundtrip() {
        // Build random invertible-ish systems and verify A*x = b always holds
        // for returned solutions.
        let mut state = 42u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for _ in 0..50 {
            let n = 3 + (next() % 10) as usize;
            let mut m = BitMatrix::zeros(n, n);
            for r in 0..n {
                for c in 0..n {
                    m.set(r, c, next() & 1 == 1);
                }
            }
            let xs = BitVec::from_bools(&(0..n).map(|_| next() & 1 == 1).collect::<Vec<_>>());
            let b = m.mul_vec(&xs);
            let sol = m.solve(&b).expect("constructed to be consistent");
            assert_eq!(m.mul_vec(&sol), b);
        }
    }
}
