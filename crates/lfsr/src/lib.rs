//! LFSR key registers, reseeding schedules, and the GF(2) machinery that
//! powers OraP's security analysis.
//!
//! The OraP scheme stores no key directly: the tamper-proof memory holds a
//! *key sequence* (a series of seeds). During the multi-cycle unlock process
//! the seeds are XOR-injected into an LFSR at its reseeding points, with
//! free-run cycles in between; the LFSR's final state is the real key. This
//! crate models all of that:
//!
//! - [`gf2`]: dense bit-vectors and bit-matrices over GF(2) with rank /
//!   linear solving (LFSRs are linear machines — this is what makes both the
//!   scheme and threat (d) analyzable).
//! - [`Lfsr`]: the key register of Fig. 1 — configurable feedback taps and
//!   reseeding points.
//! - [`KeySequence`] / [`UnlockSchedule`]: the seed stream with free-run
//!   gaps, plus solving for a seed stream that produces a desired key.
//! - [`symbolic`]: symbolic GF(2) simulation — every LFSR cell as a linear
//!   expression in the seed bits — and the XOR-tree payload cost model the
//!   paper uses against threat (d).
//! - [`PulseGenerator`]: the behavioural model of the per-cell reset pulse
//!   circuit of Fig. 2.
//!
//! # Example
//!
//! ```
//! use lfsr::{Lfsr, LfsrConfig};
//!
//! let config = LfsrConfig::with_tap_spacing(16, 8); // tap every 8 cells
//! let mut reg = Lfsr::new(config);
//! reg.load(&vec![false; 16]);
//! reg.step(&[true; 16]); // inject a seed at every reseeding point
//! assert!(reg.state().iter().any(|&b| b));
//! ```

#![warn(missing_docs)]

pub mod gf2;
pub mod symbolic;

mod pulse;
mod register;
mod schedule;

pub use pulse::PulseGenerator;
pub use register::{Lfsr, LfsrConfig};
pub use schedule::{KeySequence, UnlockSchedule};
