/// Behavioural model of the per-cell pulse generator of Fig. 2.
///
/// The circuit (an inverter chain plus NAND) outputs 1 at all times except
/// for a short 0-pulse when `scan_enable` transitions 0→1; that pulse drives
/// the asynchronous reset of one key-register cell. Crucially there is one
/// generator *per cell*, so an attacker cannot disable the reset at a single
/// point (threat (a) of the paper).
///
/// At the logic level the relevant behaviour is edge detection; the model
/// tracks the previous `scan_enable` sample per clock.
///
/// # Example
///
/// ```
/// use lfsr::PulseGenerator;
///
/// let mut pg = PulseGenerator::new();
/// assert!(!pg.clock(false)); // idle low: no pulse
/// assert!(pg.clock(true));   // rising edge: reset pulse fires
/// assert!(!pg.clock(true));  // held high: no further pulse
/// assert!(!pg.clock(false)); // falling edge: no pulse
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PulseGenerator {
    prev: bool,
    /// When `true`, the generator's output is forced high (no pulses) —
    /// models a Trojan suppressing the reset (threat (a)); used by the
    /// threat-scenario simulations in the `orap` crate.
    suppressed: bool,
}

impl PulseGenerator {
    /// A generator that has seen `scan_enable` low.
    pub fn new() -> Self {
        PulseGenerator {
            prev: false,
            suppressed: false,
        }
    }

    /// Samples `scan_enable` for one clock; returns `true` iff the reset
    /// pulse fires this cycle (a 0→1 transition, unless suppressed).
    pub fn clock(&mut self, scan_enable: bool) -> bool {
        let pulse = scan_enable && !self.prev && !self.suppressed;
        self.prev = scan_enable;
        pulse
    }

    /// Whether a Trojan currently suppresses this generator.
    pub fn is_suppressed(&self) -> bool {
        self.suppressed
    }

    /// Enables/disables Trojan suppression of the reset pulse.
    ///
    /// The paper estimates this Trojan's payload at roughly one extra gate
    /// (NAND2→NAND3) per key-register cell; the accounting lives in
    /// `orap::threat`.
    pub fn set_suppressed(&mut self, suppressed: bool) {
        self.suppressed = suppressed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_only_on_rising_edge() {
        let mut pg = PulseGenerator::new();
        let trace = [false, false, true, true, false, true, false, false, true];
        let expected = [false, false, true, false, false, true, false, false, true];
        for (i, (&se, &want)) in trace.iter().zip(&expected).enumerate() {
            assert_eq!(pg.clock(se), want, "cycle {i}");
        }
    }

    #[test]
    fn first_cycle_high_counts_as_edge() {
        let mut pg = PulseGenerator::new();
        assert!(pg.clock(true));
    }

    #[test]
    fn suppression_blocks_pulse() {
        let mut pg = PulseGenerator::new();
        pg.set_suppressed(true);
        assert!(!pg.clock(true));
        assert!(pg.is_suppressed());
        // Releasing the Trojan restores normal behaviour on the next edge.
        pg.set_suppressed(false);
        assert!(!pg.clock(true)); // still high, no edge
        pg.clock(false);
        assert!(pg.clock(true));
    }
}
