use crate::gf2::{BitMatrix, BitVec};

/// Static configuration of an OraP key-register LFSR (Fig. 1).
///
/// The register shifts towards higher indices: on each clock, cell `i`
/// receives cell `i-1`, and cell 0 receives the XOR of the feedback taps
/// (the characteristic polynomial). Reseeding points are cells whose input
/// additionally XORs an externally injected bit — driven by the tamper-proof
/// memory (and, in the modified scheme of Fig. 3, by circuit flip-flops).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LfsrConfig {
    /// Number of cells (= key width).
    pub width: usize,
    /// Cells feeding back into cell 0.
    pub taps: Vec<usize>,
    /// Cells with an injection XOR gate, in injection-input order.
    pub reseed_points: Vec<usize>,
}

impl LfsrConfig {
    /// Creates a configuration, validating index ranges.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`, any tap or reseeding point is out of range,
    /// taps are empty, or reseeding points repeat.
    pub fn new(width: usize, taps: Vec<usize>, reseed_points: Vec<usize>) -> Self {
        assert!(width > 0, "LFSR width must be positive");
        assert!(!taps.is_empty(), "feedback needs at least one tap");
        assert!(
            taps.iter().all(|&t| t < width),
            "tap index out of range"
        );
        assert!(
            reseed_points.iter().all(|&p| p < width),
            "reseeding point out of range"
        );
        let mut sorted = reseed_points.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            reseed_points.len(),
            "duplicate reseeding point"
        );
        LfsrConfig {
            width,
            taps,
            reseed_points,
        }
    }

    /// The paper's design choice: "polynomials with a new tap after every
    /// eight LFSR cells" (spacing = 8), with every cell a reseeding point
    /// (the most general case of Fig. 1).
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `spacing == 0`.
    pub fn with_tap_spacing(width: usize, spacing: usize) -> Self {
        assert!(spacing > 0, "tap spacing must be positive");
        let mut taps: Vec<usize> = (0..width).step_by(spacing).collect();
        // Always include the last cell so the register is a proper LFSR.
        if *taps.last().expect("width > 0") != width - 1 {
            taps.push(width - 1);
        }
        LfsrConfig::new(width, taps, (0..width).collect())
    }

    /// Like [`with_tap_spacing`](LfsrConfig::with_tap_spacing) but with an
    /// explicit subset of reseeding points.
    ///
    /// # Panics
    ///
    /// Same conditions as [`new`](LfsrConfig::new).
    pub fn with_reseed_points(width: usize, spacing: usize, reseed_points: Vec<usize>) -> Self {
        let base = LfsrConfig::with_tap_spacing(width, spacing);
        LfsrConfig::new(width, base.taps, reseed_points)
    }

    /// Number of XOR gates the configuration costs in hardware: one 2-input
    /// XOR per reseeding point plus the feedback XOR tree (taps − 1 gates).
    /// This is the figure the paper folds into Table I's area overhead.
    pub fn xor_gate_cost(&self) -> usize {
        self.reseed_points.len() + self.taps.len().saturating_sub(1)
    }

    /// The state-transition matrix `T` such that
    /// `next_state = T * state (+ injection)`.
    pub fn transition_matrix(&self) -> BitMatrix {
        let mut t = BitMatrix::zeros(self.width, self.width);
        for i in 1..self.width {
            t.set(i, i - 1, true);
        }
        for &tap in &self.taps {
            t.set(0, tap, true);
        }
        t
    }

    /// The injection matrix `B` mapping an injection vector (one bit per
    /// reseeding point) onto state bits: `next = T*state + B*injection`.
    pub fn injection_matrix(&self) -> BitMatrix {
        let mut b = BitMatrix::zeros(self.width, self.reseed_points.len());
        for (j, &p) in self.reseed_points.iter().enumerate() {
            b.set(p, j, true);
        }
        b
    }
}

/// A concrete LFSR instance: configuration plus current state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr {
    config: LfsrConfig,
    state: BitVec,
}

impl Lfsr {
    /// Creates an LFSR in the all-zero state.
    pub fn new(config: LfsrConfig) -> Self {
        let state = BitVec::zeros(config.width);
        Lfsr { config, state }
    }

    /// The configuration.
    pub fn config(&self) -> &LfsrConfig {
        &self.config
    }

    /// The current state as booleans (cell 0 first).
    pub fn state(&self) -> Vec<bool> {
        self.state.to_bools()
    }

    /// The current state as a [`BitVec`].
    pub fn state_bits(&self) -> &BitVec {
        &self.state
    }

    /// Loads a state directly (the OraP pulse generators do this with zero).
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the width.
    pub fn load(&mut self, state: &[bool]) {
        assert_eq!(state.len(), self.config.width, "state width mismatch");
        self.state = BitVec::from_bools(state);
    }

    /// Clears all cells (the pulse-generator reset).
    pub fn clear(&mut self) {
        self.state = BitVec::zeros(self.config.width);
    }

    /// One clock with injection values applied at the reseeding points
    /// (`injection[j]` goes to `config.reseed_points[j]`).
    ///
    /// # Panics
    ///
    /// Panics if `injection.len()` differs from the reseeding point count.
    pub fn step(&mut self, injection: &[bool]) {
        assert_eq!(
            injection.len(),
            self.config.reseed_points.len(),
            "injection width mismatch"
        );
        let feedback = self
            .config
            .taps
            .iter()
            .fold(false, |acc, &t| acc ^ self.state.get(t));
        let mut next = BitVec::zeros(self.config.width);
        next.set(0, feedback);
        for i in 1..self.config.width {
            next.set(i, self.state.get(i - 1));
        }
        for (j, &p) in self.config.reseed_points.iter().enumerate() {
            if injection[j] {
                next.flip(p);
            }
        }
        self.state = next;
    }

    /// Runs `cycles` clocks with all-zero injection (the paper's "free-run
    /// cycles", realized by pushing the all-zero memory word).
    pub fn free_run(&mut self, cycles: usize) {
        let zeros = vec![false; self.config.reseed_points.len()];
        for _ in 0..cycles {
            self.step(&zeros);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_moves_bits() {
        let cfg = LfsrConfig::new(4, vec![3], vec![0]);
        let mut l = Lfsr::new(cfg);
        l.load(&[true, false, false, false]);
        l.step(&[false]);
        assert_eq!(l.state(), vec![false, true, false, false]);
        l.step(&[false]);
        assert_eq!(l.state(), vec![false, false, true, false]);
    }

    #[test]
    fn feedback_from_tap() {
        let cfg = LfsrConfig::new(3, vec![2], vec![0]);
        let mut l = Lfsr::new(cfg);
        l.load(&[false, false, true]);
        l.step(&[false]);
        // cell2 was 1 -> feeds back into cell 0; cell 2 receives old cell 1.
        assert_eq!(l.state(), vec![true, false, false]);
    }

    #[test]
    fn injection_xors_into_points() {
        let cfg = LfsrConfig::new(4, vec![3], vec![1, 3]);
        let mut l = Lfsr::new(cfg);
        l.step(&[true, true]);
        assert_eq!(l.state(), vec![false, true, false, true]);
        // Injecting again at the same points cancels after shift effects are
        // accounted for by the linearity test below.
    }

    #[test]
    fn maximal_like_period_is_long() {
        // x^16 taps via spacing 8 is not primitive necessarily, but the
        // sequence must not be trivially short from a nonzero state.
        let cfg = LfsrConfig::with_tap_spacing(16, 8);
        let mut l = Lfsr::new(cfg);
        let mut start = vec![false; 16];
        start[0] = true;
        l.load(&start);
        let initial = l.state();
        let mut period = 0usize;
        for i in 1..=70_000 {
            l.free_run(1);
            if l.state() == initial {
                period = i;
                break;
            }
        }
        assert!(period == 0 || period > 100, "period {period} too short");
    }

    #[test]
    fn transition_matrix_matches_step() {
        let cfg = LfsrConfig::with_tap_spacing(24, 8);
        let t = cfg.transition_matrix();
        let b = cfg.injection_matrix();
        let mut l = Lfsr::new(cfg.clone());
        let mut rng = 0x123u64;
        let mut next_bit = move || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(7);
            (rng >> 40) & 1 == 1
        };
        let init: Vec<bool> = (0..24).map(|_| next_bit()).collect();
        l.load(&init);
        for _ in 0..20 {
            let inj: Vec<bool> = (0..cfg.reseed_points.len()).map(|_| next_bit()).collect();
            let mut expect = t.mul_vec(l.state_bits());
            expect.xor_assign(&b.mul_vec(&BitVec::from_bools(&inj)));
            l.step(&inj);
            assert_eq!(l.state_bits(), &expect);
        }
    }

    #[test]
    fn clear_resets() {
        let mut l = Lfsr::new(LfsrConfig::with_tap_spacing(8, 4));
        l.step(&[true; 8]);
        assert!(l.state().iter().any(|&b| b));
        l.clear();
        assert!(l.state().iter().all(|&b| !b));
    }

    #[test]
    fn xor_gate_cost_accounting() {
        let cfg = LfsrConfig::with_tap_spacing(16, 8);
        // taps: 0, 8, 15 -> 2 feedback XORs; 16 reseed XORs.
        assert_eq!(cfg.taps, vec![0, 8, 15]);
        assert_eq!(cfg.xor_gate_cost(), 16 + 2);
    }

    #[test]
    #[should_panic(expected = "tap index out of range")]
    fn bad_tap_panics() {
        LfsrConfig::new(4, vec![4], vec![]);
    }

    #[test]
    #[should_panic(expected = "duplicate reseeding point")]
    fn duplicate_point_panics() {
        LfsrConfig::new(4, vec![3], vec![1, 1]);
    }
}
