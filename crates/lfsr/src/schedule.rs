use crate::gf2::{BitMatrix, BitVec};
use crate::{Lfsr, LfsrConfig};

/// The secret *key sequence*: the seeds stored in the tamper-proof memory,
/// with the number of free-run cycles after each one.
///
/// Each seed is one injection word (one bit per reseeding point), applied on
/// a single clock; `free_runs[i]` zero-injection cycles follow seed `i`
/// (including after the last seed, as the paper allows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeySequence {
    /// Seeds, applied in order.
    pub seeds: Vec<Vec<bool>>,
    /// Free-run cycles after each seed (`len == seeds.len()`).
    pub free_runs: Vec<usize>,
}

impl KeySequence {
    /// Creates a sequence, validating shape.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty or `free_runs.len() != seeds.len()`.
    pub fn new(seeds: Vec<Vec<bool>>, free_runs: Vec<usize>) -> Self {
        assert!(!seeds.is_empty(), "need at least one seed");
        assert_eq!(
            seeds.len(),
            free_runs.len(),
            "one free-run count per seed"
        );
        KeySequence { seeds, free_runs }
    }

    /// Total unlock latency in clock cycles.
    pub fn cycles(&self) -> usize {
        self.seeds.len() + self.free_runs.iter().sum::<usize>()
    }

    /// Total seed bits (the quantity stored in tamper-proof memory).
    pub fn stored_bits(&self) -> usize {
        self.seeds.iter().map(Vec::len).sum()
    }
}

/// Executes a [`KeySequence`] against an LFSR and reasons about it linearly.
///
/// The unlock process of the OraP scheme: start from the cleared register,
/// feed every seed (with its free-run gap), and take the final state as the
/// circuit key.
#[derive(Debug, Clone)]
pub struct UnlockSchedule {
    config: LfsrConfig,
    sequence: KeySequence,
}

impl UnlockSchedule {
    /// Pairs a key sequence with an LFSR configuration.
    ///
    /// # Panics
    ///
    /// Panics if any seed's width differs from the configuration's reseeding
    /// point count.
    pub fn new(config: LfsrConfig, sequence: KeySequence) -> Self {
        for s in &sequence.seeds {
            assert_eq!(
                s.len(),
                config.reseed_points.len(),
                "seed width must match reseeding points"
            );
        }
        UnlockSchedule { config, sequence }
    }

    /// The LFSR configuration.
    pub fn config(&self) -> &LfsrConfig {
        &self.config
    }

    /// The key sequence.
    pub fn sequence(&self) -> &KeySequence {
        &self.sequence
    }

    /// Runs the unlock process from the cleared register and returns the
    /// resulting key (the final LFSR state).
    pub fn derive_key(&self) -> Vec<bool> {
        let mut l = Lfsr::new(self.config.clone());
        for (seed, &gap) in self.sequence.seeds.iter().zip(&self.sequence.free_runs) {
            l.step(seed);
            l.free_run(gap);
        }
        l.state()
    }

    /// The linear map from all seed bits (concatenated in order) to the
    /// final key: returns `(A, c)` with `key = A * seeds + c` (`c` is zero
    /// here since the register starts cleared, but kept for generality).
    pub fn seed_to_key_map(&self) -> (BitMatrix, BitVec) {
        let n = self.config.width;
        let t = self.config.transition_matrix();
        let b = self.config.injection_matrix();
        let total_seed_bits = self.sequence.stored_bits();
        // A starts as the zero map; state matrix S tracks d(state)/d(seeds).
        let mut s = BitMatrix::zeros(n, total_seed_bits);
        let mut offset = 0;
        for (seed, &gap) in self.sequence.seeds.iter().zip(&self.sequence.free_runs) {
            // state' = T*state + B*inj  where inj bits are seed variables
            // [offset, offset + seed.len())
            s = t.mul(&s);
            for (j, _) in seed.iter().enumerate() {
                // column offset+j gains B[:, j]
                for r in 0..n {
                    if self.config.injection_matrix_entry(r, j) {
                        let cur = s.get(r, offset + j);
                        s.set(r, offset + j, !cur);
                    }
                }
            }
            for _ in 0..gap {
                s = t.mul(&s);
            }
            offset += seed.len();
        }
        let _ = b;
        (s, BitVec::zeros(n))
    }

    /// Solves for a key sequence (with the same shape as the current one)
    /// that produces `target_key`. Returns `None` if the linear map cannot
    /// reach the target (insufficient controllability).
    ///
    /// # Panics
    ///
    /// Panics if `target_key.len()` differs from the LFSR width.
    pub fn solve_seeds_for_key(&self, target_key: &[bool]) -> Option<KeySequence> {
        assert_eq!(
            target_key.len(),
            self.config.width,
            "key width mismatch"
        );
        let (a, c) = self.seed_to_key_map();
        let mut rhs = BitVec::from_bools(target_key);
        rhs.xor_assign(&c);
        let sol = a.solve(&rhs)?;
        let mut seeds = Vec::with_capacity(self.sequence.seeds.len());
        let mut offset = 0;
        for s in &self.sequence.seeds {
            seeds.push((0..s.len()).map(|j| sol.get(offset + j)).collect());
            offset += s.len();
        }
        Some(KeySequence::new(seeds, self.sequence.free_runs.clone()))
    }
}

impl LfsrConfig {
    fn injection_matrix_entry(&self, row: usize, inj: usize) -> bool {
        self.reseed_points.get(inj) == Some(&row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_schedule(width: usize, seeds: usize, gap: usize) -> UnlockSchedule {
        let cfg = LfsrConfig::with_tap_spacing(width, 8);
        let mut rng = 0xabcdefu64;
        let mut bit = move || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            (rng >> 37) & 1 == 1
        };
        let seeds: Vec<Vec<bool>> = (0..seeds)
            .map(|_| (0..width).map(|_| bit()).collect())
            .collect();
        let free_runs = vec![gap; seeds.len()];
        UnlockSchedule::new(cfg, KeySequence::new(seeds, free_runs))
    }

    #[test]
    fn derive_key_is_deterministic() {
        let s = demo_schedule(32, 4, 3);
        assert_eq!(s.derive_key(), s.derive_key());
    }

    #[test]
    fn linear_map_matches_simulation() {
        let s = demo_schedule(24, 3, 2);
        let (a, c) = s.seed_to_key_map();
        let concat: Vec<bool> = s.sequence().seeds.iter().flatten().copied().collect();
        let mut predicted = a.mul_vec(&BitVec::from_bools(&concat));
        predicted.xor_assign(&c);
        assert_eq!(predicted.to_bools(), s.derive_key());
    }

    #[test]
    fn solve_seeds_reaches_target() {
        let s = demo_schedule(16, 3, 1);
        let target: Vec<bool> = (0..16).map(|i| i % 3 == 0).collect();
        let solved = s.solve_seeds_for_key(&target).expect("full reseed points");
        let schedule = UnlockSchedule::new(s.config().clone(), solved);
        assert_eq!(schedule.derive_key(), target);
    }

    #[test]
    fn single_seed_full_points_is_fully_controllable() {
        // With a reseeding point at every cell and one seed with no free run,
        // the key equals the seed (full controllability, rank = width).
        let cfg = LfsrConfig::with_tap_spacing(16, 8);
        let seed = vec![vec![true; 16]];
        let sched = UnlockSchedule::new(cfg, KeySequence::new(seed, vec![0]));
        let (a, _) = sched.seed_to_key_map();
        assert_eq!(a.rank(), 16);
    }

    #[test]
    fn sparse_points_reduce_controllability() {
        // Only 4 reseeding points and a single seed: rank at most 4.
        let cfg = LfsrConfig::with_reseed_points(16, 8, vec![0, 4, 8, 12]);
        let seeds = vec![vec![true; 4]];
        let sched = UnlockSchedule::new(cfg, KeySequence::new(seeds, vec![0]));
        let (a, _) = sched.seed_to_key_map();
        assert!(a.rank() <= 4);
    }

    #[test]
    fn more_seeds_restore_controllability() {
        // The paper's Fig. 3 argument: "the same sequence can be applied from
        // half the reseeding points in the double number of cycles". With 4
        // points but 8 seeds (and mixing free-runs), rank recovers.
        let cfg = LfsrConfig::with_reseed_points(16, 8, vec![0, 4, 8, 12]);
        let seeds = vec![vec![false; 4]; 8];
        let sched = UnlockSchedule::new(cfg, KeySequence::new(seeds, vec![1; 8]));
        let (a, _) = sched.seed_to_key_map();
        assert!(a.rank() > 4, "rank {} should exceed point count", a.rank());
    }

    #[test]
    fn cycles_and_stored_bits() {
        let ks = KeySequence::new(vec![vec![false; 8]; 3], vec![2, 0, 5]);
        assert_eq!(ks.cycles(), 3 + 7);
        assert_eq!(ks.stored_bits(), 24);
    }

    #[test]
    #[should_panic(expected = "seed width")]
    fn wrong_seed_width_panics() {
        let cfg = LfsrConfig::with_tap_spacing(8, 4);
        UnlockSchedule::new(cfg, KeySequence::new(vec![vec![true; 3]], vec![0]));
    }
}
