#!/usr/bin/env bash
# Tier-1 verification, run fully offline (the hermetic-build policy in
# DESIGN.md §5 means dependency resolution never touches a registry).
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

# Pre-existing style lints in the seed code, scoped and allowed until each
# is cleaned up; new code must not extend this list.
# (needless_range_loop and useless_vec were cleaned up and removed.)
CLIPPY_ALLOW=(
  -A clippy::manual_contains
  -A clippy::manual_is_multiple_of
  -A clippy::print_literal
)

echo "==> cargo build --release (offline)"
cargo build --release --workspace --offline

echo "==> cargo test -q (offline)"
cargo test -q --workspace --offline

echo "==> cargo clippy -D warnings (offline, scoped allows)"
cargo clippy --workspace --all-targets --offline -- -D warnings "${CLIPPY_ALLOW[@]}"

echo "==> cargo doc -D warnings (offline, no deps)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --offline --no-deps --quiet

echo "==> SAT-attack bench (smoke mode) -> results/BENCH_sat_smoke.json"
ORAP_BENCH_SMOKE=1 cargo bench -p orap-bench --bench sat_attack --offline

echo "==> engine bench (smoke mode) -> results/BENCH_engine_smoke.json"
ORAP_BENCH_SMOKE=1 cargo bench -p orap-bench --bench engine --offline

echo "==> conformance kill matrix (smoke mode) -> results/BENCH_conformance_smoke.json"
ORAP_BENCH_SMOKE=1 cargo bench -p orap-bench --bench conformance --offline

echo "==> scaling bench (smoke mode) -> results/BENCH_scaling_smoke.json"
ORAP_BENCH_SMOKE=1 cargo bench -p orap-bench --bench scaling --offline

echo "==> verifying the dependency graph is path-only"
if cargo metadata --format-version 1 --offline \
    | grep -o '"source":"registry[^"]*"' | head -1 | grep -q registry; then
  echo "ERROR: registry dependency found in cargo metadata" >&2
  exit 1
fi

echo "ci.sh: all checks passed"
