#!/usr/bin/env bash
# Tier-1 verification, run fully offline (the hermetic-build policy in
# DESIGN.md §5 means dependency resolution never touches a registry).
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

# Pre-existing style lints in the seed code, scoped and allowed until each
# is cleaned up; new code must not extend this list.
# (needless_range_loop, useless_vec, manual_contains, manual_is_multiple_of
# and print_literal were cleaned up and removed — the list is now empty.)
CLIPPY_ALLOW=()

echo "==> cargo build --release (offline)"
cargo build --release --workspace --offline

echo "==> cargo test -q (offline)"
cargo test -q --workspace --offline

echo "==> cargo clippy -D warnings (offline, scoped allows)"
cargo clippy --workspace --all-targets --offline -- -D warnings "${CLIPPY_ALLOW[@]}"

echo "==> cargo doc -D warnings (offline, no deps)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --offline --no-deps --quiet

echo "==> SAT-attack bench (smoke mode) -> results/BENCH_sat_smoke.json"
ORAP_BENCH_SMOKE=1 cargo bench -p orap-bench --bench sat_attack --offline
for field in inprocessings subsumed_clauses eliminated_vars restored_vars \
             vivified_literals chrono_backtracks restarts_forced; do
  if ! grep -q "\"$field\"" results/BENCH_sat_smoke.json; then
    echo "ERROR: BENCH_sat_smoke.json missing solver-stats field: $field" >&2
    exit 1
  fi
done

echo "==> engine bench (smoke mode) -> results/BENCH_engine_smoke.json"
ORAP_BENCH_SMOKE=1 cargo bench -p orap-bench --bench engine --offline

echo "==> conformance kill matrix (smoke mode) -> results/BENCH_conformance_smoke.json"
ORAP_BENCH_SMOKE=1 cargo bench -p orap-bench --bench conformance --offline

echo "==> scaling bench (smoke mode) -> results/BENCH_scaling_smoke.json"
ORAP_BENCH_SMOKE=1 cargo bench -p orap-bench --bench scaling --offline

echo "==> scancheck: scan-obfuscation workloads (smoke mode) -> results/BENCH_scan_smoke.json"
ORAP_BENCH_SMOKE=1 cargo bench -p orap-bench --bench scan --offline
# The harness gates on the clean battery, the session-exact seed and the
# three scan mutants; the shape check keeps the exported schema honest
# (unroll geometry, solver stats, kill count).
for field in unroll_depth load_cycles frame_bits conflicts propagations \
             scan_mutants scan_kills; do
  if ! grep -q "\"$field\"" results/BENCH_scan_smoke.json; then
    echo "ERROR: BENCH_scan_smoke.json missing expected field: $field" >&2
    exit 1
  fi
done
if ! grep -q '"scan_kills": 3' results/BENCH_scan_smoke.json; then
  echo "ERROR: BENCH_scan_smoke.json does not report all scan mutants killed" >&2
  exit 1
fi

echo "==> serve smoke: daemon + load harness -> results/BENCH_serve_smoke.json"
SERVE_PORT_FILE="$(mktemp)"
rm -f "$SERVE_PORT_FILE"
cargo run --release --offline -q -p serve --bin serve_daemon -- \
  --workers 2 --announce "$SERVE_PORT_FILE" &
SERVE_PID=$!
for _ in $(seq 1 150); do
  [ -s "$SERVE_PORT_FILE" ] && break
  sleep 0.2
done
if ! [ -s "$SERVE_PORT_FILE" ]; then
  echo "ERROR: serve_daemon never announced its port" >&2
  kill "$SERVE_PID" 2>/dev/null || true
  exit 1
fi
cargo run --release --offline -q -p serve --bin serve_load -- \
  --addr "127.0.0.1:$(cat "$SERVE_PORT_FILE")" --smoke --shutdown
wait "$SERVE_PID"
rm -f "$SERVE_PORT_FILE"
# The smoke run exercises two attack engines over the wire (SAT plus a
# double-DIP leg every eighth session) and must report the uniform
# oracle-query ledger the engine layer meters at the oracle boundary.
for field in sessions_per_sec p99_ns coalesced depth_total \
             oracle_queries_total '"failed": 0'; do
  if ! grep -q "$field" results/BENCH_serve_smoke.json; then
    echo "ERROR: BENCH_serve_smoke.json missing expected field: $field" >&2
    exit 1
  fi
done
if grep -q '"oracle_queries_total": 0[,}]' results/BENCH_serve_smoke.json; then
  echo "ERROR: BENCH_serve_smoke.json reports zero oracle queries" >&2
  exit 1
fi

echo "==> verifying the dependency graph is path-only"
if cargo metadata --format-version 1 --offline \
    | grep -o '"source":"registry[^"]*"' | head -1 | grep -q registry; then
  echo "ERROR: registry dependency found in cargo metadata" >&2
  exit 1
fi

echo "ci.sh: all checks passed"
