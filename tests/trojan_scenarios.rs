//! The Section III threat scenarios (a)–(e) as an asserting integration
//! test: each Trojan succeeds against the baseline strawman and is defeated
//! (priced out, detected, or functionally broken) by the hardened design
//! guidelines and the modified scheme.
//!
//! This is the test-suite twin of `examples/trojan_scenarios.rs`, which
//! prints the same story as a narrated table.

use orap::chip::{OracleMode, ProtectedChip, ProtectedChipOracle};
use orap::threat::{
    arm, extract_key_via_scan, one_shot_query_with_frozen_ffs, payload_cost, DesignPosture,
    SideChannelModel, ThreatScenario,
};
use orap::{protect, OrapConfig, OrapProtected, OrapVariant};

fn protect_counter(variant: OrapVariant) -> OrapProtected {
    let design = netlist::samples::counter(16);
    let wll = locking::weighted::WllConfig {
        key_bits: 24,
        control_width: 3,
        seed: 11,
    };
    protect(
        &design,
        &wll,
        &OrapConfig {
            variant,
            ..OrapConfig::default()
        },
    )
    .expect("protect")
}

/// Every scenario is at least as expensive against the hardened guidelines
/// as against the baseline strawman, and the pure-payload scenarios whose
/// countermeasure is detection — (b), (c), (d) — land above the
/// side-channel detection threshold.
#[test]
fn hardening_prices_every_scenario_at_or_above_baseline() {
    let basic = protect_counter(OrapVariant::Basic);
    let detector = SideChannelModel::default();
    for scenario in ThreatScenario::ALL {
        let base = payload_cost(&basic, scenario, DesignPosture::Baseline);
        let hard = payload_cost(&basic, scenario, DesignPosture::Hardened);
        assert!(
            hard >= base,
            "{}: hardened payload {hard} GE below baseline {base} GE",
            scenario.label()
        );
    }
    for scenario in [
        ThreatScenario::HoldLfsrAndBypass,
        ThreatScenario::ShadowRegister,
        ThreatScenario::XorTrees,
    ] {
        let hard = payload_cost(&basic, scenario, DesignPosture::Hardened);
        assert!(
            detector.detects(hard),
            "{}: {hard} GE payload must cross the detection threshold",
            scenario.label()
        );
    }
    // The structural scenarios get strictly pricier under the guidelines
    // (per-cell pulse generators for (a); interleaved cells need a bypass
    // mux each for (b)).
    for scenario in [
        ThreatScenario::SuppressPerCellReset,
        ThreatScenario::HoldLfsrAndBypass,
    ] {
        assert!(
            payload_cost(&basic, scenario, DesignPosture::Hardened)
                > payload_cost(&basic, scenario, DesignPosture::Baseline),
            "{}: hardening must raise the payload cost",
            scenario.label()
        );
    }
}

/// Scenario (a): an honest chip's scan-out never carries the key (the
/// per-cell resets clear it on the scan-enable edge); with the resets
/// suppressed, the exact key shifts out on the scan pins.
#[test]
fn scenario_a_reset_suppression_leaks_key_honest_chip_does_not() {
    let basic = protect_counter(OrapVariant::Basic);

    let mut honest = ProtectedChip::new(&basic).expect("chip");
    let leaked = extract_key_via_scan(&mut honest);
    assert_ne!(
        leaked, basic.locked.correct_key,
        "honest chip must not leak the key on scan-out"
    );
    assert!(
        leaked.iter().all(|&b| !b),
        "cleared key register scans out all zeros"
    );

    let mut trojaned = ProtectedChip::new(&basic).expect("chip");
    arm(&mut trojaned, ThreatScenario::SuppressPerCellReset);
    let leaked = extract_key_via_scan(&mut trojaned);
    assert_eq!(
        leaked, basic.locked.correct_key,
        "suppressed per-cell resets let the key ride out on the scan pins"
    );
}

/// Scenarios (b) and (c): holding the LFSR through scan (with bypass
/// muxes) or muxing in a shadow key register resurrects the oracle — scan
/// responses become correct-function responses again.
#[test]
fn scenarios_b_and_c_resurrect_the_oracle() {
    let basic = protect_counter(OrapVariant::Basic);
    // Oracle queries cover the original design's PIs then its state image
    // (the counter has one primary input and sixteen flip-flops).
    let n = 1 + 16;
    for scenario in [
        ThreatScenario::HoldLfsrAndBypass,
        ThreatScenario::ShadowRegister,
    ] {
        let mut chip = ProtectedChip::new(&basic).expect("chip");
        arm(&mut chip, scenario);
        let mut oracle = ProtectedChipOracle::new(chip, OracleMode::Naive);
        let mut rng = netlist::rng::SplitMix64::new(13);
        for _ in 0..16 {
            let input: Vec<bool> = (0..n).map(|_| rng.bool()).collect();
            assert!(
                oracle.response_is_correct(&input).expect("simulable"),
                "{}: armed chip must answer with correct-function responses",
                scenario.label()
            );
        }
    }
}

/// Scenario (e): the frozen-flip-flop one-shot query captures a correct
/// response against the Basic scheme but garbage against the Modified
/// scheme, whose unlock process needs the live responses the Trojan froze.
#[test]
fn scenario_e_one_shot_query_defeated_by_modified_scheme() {
    let design = netlist::samples::counter(16);
    let state: Vec<bool> = (0..16).map(|i| i % 3 == 0).collect();
    let mut reference = gatesim::SeqSim::new(&design).expect("seq sim");
    reference.set_state(&state);
    reference.step(&[true]);

    let basic = protect_counter(OrapVariant::Basic);
    let mut chip_basic = ProtectedChip::new(&basic).expect("chip");
    arm(&mut chip_basic, ThreatScenario::FreezeStateFfs);
    let (_, captured) = one_shot_query_with_frozen_ffs(&mut chip_basic, &state, &[true]);
    assert_eq!(
        captured,
        reference.state(),
        "Basic scheme: the one-shot query captures the true next state"
    );

    let modified = protect_counter(OrapVariant::Modified);
    let mut chip_mod = ProtectedChip::new(&modified).expect("chip");
    arm(&mut chip_mod, ThreatScenario::FreezeStateFfs);
    let (_, captured) = one_shot_query_with_frozen_ffs(&mut chip_mod, &state, &[true]);
    assert_ne!(
        captured,
        reference.state(),
        "Modified scheme: freezing the flip-flops corrupts the key itself"
    );

    // And the unlock process itself fails under the Trojan.
    let mut chip_mod = ProtectedChip::new(&modified).expect("chip");
    arm(&mut chip_mod, ThreatScenario::FreezeStateFfs);
    chip_mod.power_on_and_unlock();
    assert!(
        !chip_mod.key_register_holds_correct_key(),
        "Modified scheme must fail to unlock with frozen state flip-flops"
    );
}

/// The scan-era schemes under the paper's lens. Dynamically keyed scan
/// chains obfuscate the *netlist view* of the scan interface but leave the
/// oracle answering — so DynUnlock recovers the LFSR seed through bounded
/// scan sessions; killing the oracle (the OraP posture) defeats the same
/// attack on the same netlist.
#[test]
fn dynamic_scan_obfuscation_falls_to_dyn_unlock_unless_the_oracle_dies() {
    use attacks::dyn_unlock::{self, DynUnlockConfig, ScanSessionOracle};
    use locking::scan_obfuscation::{self, ScanObfConfig, UnrollOptions};

    let design = netlist::samples::counter(8);
    let locked = scan_obfuscation::lock(&design, &ScanObfConfig::balanced(8, 3))
        .expect("lockable");
    let unrolled = locked.unroll(&UnrollOptions::default()).expect("acyclic");
    let config = DynUnlockConfig::for_session(&unrolled);

    // Open scan interface: the chip answers every bounded session, and the
    // seed falls out of the SAT loop.
    let mut open = ScanSessionOracle::new(&locked, &unrolled).expect("chip oracle");
    let out = dyn_unlock::attack(&unrolled.locked, &mut open, &config);
    let key = out.key.expect("open scan oracle must surrender the seed");
    assert!(
        attacks::verify::key_exact_counterexample(&unrolled.locked, &key).is_none(),
        "recovered seed must be session-exact"
    );

    // Protected oracle: the identical attack on the identical netlist dies
    // at the first refused query.
    let mut dead = attacks::DeadOracle::new(
        unrolled.load_cycles * unrolled.num_chains + design.primary_inputs().len(),
        unrolled.locked.circuit.primary_outputs().len(),
    );
    let out = dyn_unlock::attack(&unrolled.locked, &mut dead, &config);
    assert_eq!(out.key, None);
    assert_eq!(out.failure, Some(attacks::FailureReason::OracleUnavailable));
}

/// K-Gate multi-key encoding likewise protects only the netlist: with an
/// open oracle the plain SAT attack recovers a key that decodes every
/// class exactly, while the dead oracle starves it.
#[test]
fn kgate_falls_to_sat_with_an_open_oracle_and_starves_without_one() {
    use locking::kgate::{self, KGateConfig};

    let design = netlist::samples::ripple_adder(4);
    let locked = kgate::lock(&design, &KGateConfig { classes: 4, word_bits: 3, seed: 7 })
        .expect("lockable");

    let mut open = attacks::CombOracle::from_locked(&locked).expect("valid lock");
    let out = attacks::sat::attack(&locked, &mut open, &attacks::sat::SatAttackConfig::default());
    let key = out.key.expect("open oracle must surrender a key");
    assert!(
        attacks::verify::key_exact_counterexample(&locked, &key).is_none(),
        "recovered key must decode every class exactly"
    );

    let mut dead = attacks::DeadOracle::new(
        design.primary_inputs().len(),
        design.primary_outputs().len(),
    );
    let out = attacks::sat::attack(&locked, &mut dead, &attacks::sat::SatAttackConfig::default());
    assert_eq!(out.key, None);
    assert_eq!(out.failure, Some(attacks::FailureReason::OracleUnavailable));
}
