//! Focused integration tests of the protected-chip model: scan-chain edge
//! cases, repeated unlock sessions, variant interplay, and oracle adapters.

use attacks::Oracle;
use locking::weighted::WllConfig;
use orap::chip::{ChainCell, OracleMode, ProtectedChip, ProtectedChipOracle};
use orap::threat::{arm, ThreatScenario};
use orap::{protect, OrapConfig, OrapVariant, UnlockStimulus};

fn wll(bits: usize) -> WllConfig {
    WllConfig {
        key_bits: bits,
        control_width: 3,
        seed: 77,
    }
}

fn build(variant: OrapVariant, chains: usize) -> (netlist::Circuit, orap::OrapProtected) {
    let design = netlist::samples::counter(12);
    let p = protect(
        &design,
        &wll(9),
        &OrapConfig {
            variant,
            scan_chains: chains,
            ..OrapConfig::default()
        },
    )
    .expect("protect");
    (design, p)
}

#[test]
fn single_chain_chip_works() {
    let (_, p) = build(OrapVariant::Basic, 1);
    let mut chip = ProtectedChip::new(&p).expect("chip");
    assert_eq!(chip.num_scan_chains(), 1);
    chip.power_on_and_unlock();
    assert!(chip.key_register_holds_correct_key());
    chip.set_scan_enable(true);
    chip.clock(&[false], &[false]);
    assert!(!chip.key_register_holds_correct_key());
}

#[test]
fn many_chains_chip_works() {
    let (_, p) = build(OrapVariant::Basic, 8);
    let mut chip = ProtectedChip::new(&p).expect("chip");
    assert_eq!(chip.num_scan_chains(), 8);
    chip.power_on_and_unlock();
    assert!(chip.key_register_holds_correct_key());
}

#[test]
fn chains_cover_all_cells_exactly_once() {
    for chains in [1usize, 2, 3, 4, 7] {
        let (_, p) = build(OrapVariant::Basic, chains);
        let chip = ProtectedChip::new(&p).expect("chip");
        let mut keys = vec![0u32; p.key_bits()];
        let mut states = vec![0u32; 12];
        for chain in chip.chains() {
            for cell in chain {
                match cell {
                    ChainCell::Key(i) => keys[*i] += 1,
                    ChainCell::State(i) => states[*i] += 1,
                }
            }
        }
        assert!(keys.iter().all(|&c| c == 1), "{chains} chains: {keys:?}");
        assert!(states.iter().all(|&c| c == 1), "{chains} chains: {states:?}");
    }
}

#[test]
fn unlock_is_repeatable() {
    let (_, p) = build(OrapVariant::Basic, 4);
    let mut chip = ProtectedChip::new(&p).expect("chip");
    for round in 0..3 {
        chip.power_on_and_unlock();
        assert!(
            chip.key_register_holds_correct_key(),
            "unlock round {round}"
        );
        // Scan kills the key; re-unlocking must restore it.
        chip.set_scan_enable(true);
        chip.clock(&[false], &vec![false; chip.num_scan_chains()]);
        chip.set_scan_enable(false);
        assert!(!chip.key_register_holds_correct_key());
    }
}

#[test]
fn modified_variant_unlock_repeatable() {
    let (_, p) = build(OrapVariant::Modified, 4);
    let mut chip = ProtectedChip::new(&p).expect("chip");
    for _ in 0..2 {
        chip.power_on_and_unlock();
        assert!(chip.key_register_holds_correct_key());
        chip.set_scan_enable(true);
        chip.clock(&[false], &vec![false; chip.num_scan_chains()]);
        chip.set_scan_enable(false);
    }
}

#[test]
fn all_zero_stimulus_variant_also_constructs() {
    let design = netlist::generate::random_comb(1, 6, 4, 120).expect("generate");
    // Combinational design with Basic scheme and AllZero stimulus.
    let p = protect(
        &design,
        &wll(6),
        &OrapConfig {
            unlock_stimulus: UnlockStimulus::AllZero,
            ..OrapConfig::default()
        },
    )
    .expect("protect");
    assert_eq!(p.unlock_stimulus, UnlockStimulus::AllZero);
}

#[test]
fn oracle_interface_dimensions() {
    let (design, p) = build(OrapVariant::Basic, 4);
    let chip = ProtectedChip::new(&p).expect("chip");
    let oracle = ProtectedChipOracle::new(chip, OracleMode::Strict);
    assert_eq!(
        oracle.num_inputs(),
        design.primary_inputs().len() + design.dffs().len()
    );
    assert_eq!(
        oracle.num_outputs(),
        design.primary_outputs().len() + design.dffs().len()
    );
}

#[test]
fn shadow_trojan_keeps_functional_behaviour() {
    // The threat model demands the trojaned chip still work normally for
    // the legitimate owner (it must pass activation tests).
    let (design, p) = build(OrapVariant::Basic, 4);
    let mut chip = ProtectedChip::new(&p).expect("chip");
    arm(&mut chip, ThreatScenario::ShadowRegister);
    chip.power_on_and_unlock();
    chip.set_state_ffs(&[false; 12]);
    let mut reference = gatesim::SeqSim::new(&design).expect("sim");
    for _ in 0..10 {
        let out = chip.clock(&[true], &vec![false; chip.num_scan_chains()]);
        assert_eq!(out.outputs, reference.step(&[true]));
    }
}

#[test]
fn suppression_trojan_keeps_functional_behaviour() {
    let (design, p) = build(OrapVariant::Basic, 4);
    let mut chip = ProtectedChip::new(&p).expect("chip");
    arm(&mut chip, ThreatScenario::SuppressPerCellReset);
    chip.power_on_and_unlock();
    chip.set_state_ffs(&[false; 12]);
    let mut reference = gatesim::SeqSim::new(&design).expect("sim");
    for _ in 0..10 {
        let out = chip.clock(&[true], &vec![false; chip.num_scan_chains()]);
        assert_eq!(out.outputs, reference.step(&[true]));
    }
}

#[test]
fn partial_reset_suppression_still_destroys_the_key() {
    // Suppressing only SOME pulse generators (a cheaper Trojan) is useless:
    // the unsuppressed cells clear and the scanned-out key is wrong.
    let (_, p) = build(OrapVariant::Basic, 4);
    let mut chip = ProtectedChip::new(&p).expect("chip");
    // Suppress the first half of the cells only.
    for i in 0..p.key_bits() / 2 {
        chip.trojan_suppress_cell(i);
    }
    let key = orap::threat::extract_key_via_scan(&mut chip);
    assert_ne!(key, p.locked.correct_key, "half a Trojan gains nothing");
}

#[test]
fn naive_oracle_responses_match_locked_simulation() {
    let (_, p) = build(OrapVariant::Basic, 4);
    let chip = ProtectedChip::new(&p).expect("chip");
    let mut oracle = ProtectedChipOracle::new(chip, OracleMode::Naive);
    // Query twice with the same input: the chip is deterministic, so the
    // (locked) responses must agree.
    let n = oracle.num_inputs();
    let input = vec![true; n];
    let a = oracle.query(&input).expect("naive answers");
    let b = oracle.query(&input).expect("naive answers");
    assert_eq!(a, b, "scan queries must be repeatable");
}
