//! Cross-crate integration tests: the full designer → fab → attacker story.

use attacks::{sat, CombOracle, FailureReason, Oracle};
use gatesim::equiv;
use locking::weighted::WllConfig;
use netlist::generate::{self, BenchmarkId};
use orap::chip::{OracleMode, ProtectedChip, ProtectedChipOracle};
use orap::{protect, OrapConfig, OrapVariant};

fn wll(bits: usize) -> WllConfig {
    WllConfig {
        key_bits: bits,
        control_width: 3,
        seed: 77,
    }
}

/// Designer flow on a benchmark-profile circuit: protect, fabricate,
/// unlock, and verify the chip computes the original function.
#[test]
fn protect_unlock_and_verify_functionality() {
    let profile = generate::profile(BenchmarkId::S38417).scaled(0.01);
    let design = generate::synthesize(&profile).expect("profile valid");
    let protected = protect(&design, &wll(16), &OrapConfig::default()).expect("protect");

    // The locked netlist under the correct key is the original function.
    assert!(protected
        .locked
        .verify_against(&design, 2048)
        .expect("simulable"));

    // The chip model unlocks to the correct key and runs correctly.
    let mut chip = ProtectedChip::new(&protected).expect("chip");
    chip.power_on_and_unlock();
    assert!(chip.key_register_holds_correct_key());

    let mut reference = gatesim::SeqSim::new(&design).expect("seq sim");
    chip.set_state_ffs(&vec![false; design.dffs().len()]);
    let mut rng = netlist::rng::SplitMix64::new(5);
    for _ in 0..32 {
        let pis: Vec<bool> = (0..design.primary_inputs().len())
            .map(|_| rng.bool())
            .collect();
        let out = chip.clock(&pis, &vec![false; chip.num_scan_chains()]);
        let want = reference.step(&pis);
        assert_eq!(out.outputs, want);
    }
}

/// The paper's core claim, full stack: every oracle-guided attack that
/// breaks WLL through an open scan interface dies against the OraP chip.
#[test]
fn attack_matrix_open_vs_orap() {
    let design = netlist::samples::counter(12);
    let protected = protect(&design, &wll(12), &OrapConfig::default()).expect("protect");
    let locked = &protected.locked;

    // Open oracle: SAT attack succeeds. The sampled check is a cheap
    // pre-filter; the SAT miter then proves exact equivalence on every
    // input, which the SAT attack guarantees on termination.
    let mut open = CombOracle::from_locked(locked).expect("oracle");
    let out = sat::attack(locked, &mut open, &sat::SatAttackConfig::default());
    let key = out.key.expect("open scan falls to the SAT attack");
    assert!(attacks::key_is_functionally_correct(locked, &key, 2048).expect("simulable"));
    assert_eq!(
        attacks::verify::key_exact_counterexample(locked, &key),
        None,
        "SAT attack terminated, so the recovered key must be exactly correct"
    );

    // OraP chip, strict adapter: attack fails at the first query.
    let chip = ProtectedChip::new(&protected).expect("chip");
    let mut strict = ProtectedChipOracle::new(chip.clone(), OracleMode::Strict);
    let out = sat::attack(locked, &mut strict, &sat::SatAttackConfig::default());
    assert_eq!(out.failure, Some(FailureReason::OracleUnavailable));

    // OraP chip, naive adapter: whatever key comes out is functionally
    // wrong (the scan responses were locked-circuit outputs). The exact
    // miter must produce a concrete distinguishing input, and the sampled
    // pre-filter must agree with the exact verdict.
    let mut naive = ProtectedChipOracle::new(chip, OracleMode::Naive);
    let out = sat::attack(locked, &mut naive, &sat::SatAttackConfig::default());
    if let Some(key) = out.key {
        assert!(
            !attacks::key_is_functionally_correct(locked, &key, 2048).expect("simulable"),
            "a key learned from locked responses must not unlock the chip"
        );
        assert!(
            !attacks::verify::key_is_exactly_correct(locked, &key),
            "the exact miter must also reject a key learned from locked responses"
        );
    }
}

/// Hill climbing and sensitization against the OraP chip (strict): denied.
#[test]
fn secondary_attacks_denied_by_orap() {
    let design = netlist::samples::counter(10);
    let protected = protect(&design, &wll(9), &OrapConfig::default()).expect("protect");
    let chip = ProtectedChip::new(&protected).expect("chip");

    let mut oracle = ProtectedChipOracle::new(chip.clone(), OracleMode::Strict);
    let hc = attacks::hill_climbing::attack(
        &protected.locked,
        &mut oracle,
        &attacks::hill_climbing::HillClimbConfig::default(),
    );
    assert_eq!(hc.failure, Some(FailureReason::OracleUnavailable));

    let mut oracle = ProtectedChipOracle::new(chip, OracleMode::Strict);
    let sens = attacks::sensitization::attack(
        &protected.locked,
        &mut oracle,
        &attacks::sensitization::SensitizationConfig::default(),
    );
    assert_eq!(sens.outcome.failure, Some(FailureReason::OracleUnavailable));
}

/// The locked netlist round-trips through the `.bench` format with its
/// function intact (interop with external EDA flows).
#[test]
fn locked_netlist_bench_roundtrip() {
    let design = generate::random_comb(3, 10, 6, 200).expect("generate");
    let locked = locking::weighted::lock(&design, &wll(9)).expect("lock");
    let text = netlist::bench::write(&locked.circuit);
    let parsed = netlist::bench::parse(&text).expect("parse back");
    assert_eq!(
        equiv::check_random(&locked.circuit, &parsed, 2048, 9).expect("simulable"),
        None,
        "bench round-trip must preserve the locked function"
    );
}

/// The synthesis pipeline (used for Table I overheads) preserves the locked
/// circuit's function.
#[test]
fn synthesis_preserves_locked_function() {
    let design = generate::random_comb(4, 10, 6, 200).expect("generate");
    let locked = locking::weighted::lock(&design, &wll(9)).expect("lock");
    let aig = aigsynth::Aig::from_circuit(&locked.circuit).expect("encode");
    let opt = aigsynth::optimize_aig(&aig);
    let back = opt.to_circuit("optimized");
    assert_eq!(
        equiv::check_random(&locked.circuit, &back, 2048, 11).expect("simulable"),
        None
    );
    assert!(opt.num_ands() <= aig.num_ands());
}

/// The modified scheme ties unlocking to live responses on a realistic
/// benchmark profile.
#[test]
fn modified_scheme_end_to_end() {
    let profile = generate::profile(BenchmarkId::B20).scaled(0.015);
    let design = generate::synthesize(&profile).expect("profile valid");
    let protected = protect(
        &design,
        &wll(12),
        &OrapConfig {
            variant: OrapVariant::Modified,
            ..OrapConfig::default()
        },
    )
    .expect("protect modified");
    let mut chip = ProtectedChip::new(&protected).expect("chip");
    chip.power_on_and_unlock();
    assert!(chip.key_register_holds_correct_key());

    // Frozen flip-flops (threat e) corrupt the key.
    let mut trojaned = ProtectedChip::new(&protected).expect("chip");
    orap::threat::arm(&mut trojaned, orap::threat::ThreatScenario::FreezeStateFfs);
    trojaned.power_on_and_unlock();
    assert!(!trojaned.key_register_holds_correct_key());
}

/// ATPG works on protected circuits with key inputs as free inputs, and the
/// key gates act as control points (Table II trend: redundant+aborted does
/// not explode; coverage stays in the same band or improves).
#[test]
fn atpg_on_protected_circuit() {
    let design = generate::random_comb(8, 12, 8, 250).expect("generate");
    let cfg = atpg::AtpgConfig {
        random_patterns: 512,
        backtrack_limit: 2000,
        seed: 1,
    };
    let before = atpg::run_atpg(&design, &cfg).expect("atpg original");
    let locked = locking::weighted::lock(&design, &wll(9)).expect("lock");
    let after = atpg::run_atpg(&locked.circuit, &cfg).expect("atpg locked");
    assert!(
        after.coverage_percent() >= before.coverage_percent() - 2.0,
        "coverage degraded: {:.2}% -> {:.2}%",
        before.coverage_percent(),
        after.coverage_percent()
    );
}

/// The whole oracle-denial story measured quantitatively: responses produced
/// through the OraP scan path match the locked circuit, never leaking more
/// than chance agreement with the true function.
#[test]
fn scan_responses_are_locked_circuit_responses() {
    let design = netlist::samples::counter(10);
    let protected = protect(&design, &wll(9), &OrapConfig::default()).expect("protect");
    let chip = ProtectedChip::new(&protected).expect("chip");
    let mut oracle = ProtectedChipOracle::new(chip, OracleMode::Naive);
    let n = oracle.num_inputs();
    let mut rng = netlist::rng::SplitMix64::new(21);
    let mut correct = 0usize;
    let total = 40;
    for _ in 0..total {
        let input: Vec<bool> = (0..n).map(|_| rng.bool()).collect();
        if oracle.response_is_correct(&input).expect("simulable") {
            correct += 1;
        }
    }
    assert!(
        correct < total,
        "every response matching the true function would mean the oracle leaked"
    );
}
