//! Cross-checks between the SAT solver, the CNF encoder and the simulators:
//! the encoded circuit and the bit-parallel simulator must agree under every
//! mixed usage pattern the attacks rely on.

use attacks::cnf::{add_io_constraint, bind_fresh, encode};
use cdcl::{SolveResult, Solver};
use gatesim::CombSim;
use netlist::rng::SplitMix64;

/// The miter of a circuit against itself must be UNSAT (no input
/// distinguishes a circuit from itself).
#[test]
fn self_miter_is_unsat() {
    let c = netlist::generate::random_comb(51, 8, 5, 120).expect("generate");
    let cc = netlist::CompiledCircuit::compile(&c).expect("compile");
    let mut solver = Solver::new();
    let (bind, _) = bind_fresh(&mut solver, &c.comb_inputs());
    let lits1 = encode(&mut solver, &cc, &bind);
    let lits2 = encode(&mut solver, &cc, &bind);
    let diffs: Vec<cdcl::Lit> = c
        .comb_outputs()
        .iter()
        .map(|o| attacks::cnf::encode_xor(&mut solver, lits1[o.index()], lits2[o.index()]))
        .collect();
    solver.add_clause(&diffs);
    assert_eq!(solver.solve(), SolveResult::Unsat);
}

/// A miter between a circuit and a mutated copy must be SAT, and the model
/// must be a genuine distinguishing input per simulation.
#[test]
fn mutation_miter_finds_real_counterexample() {
    let a = netlist::generate::random_comb(52, 8, 5, 120).expect("generate");
    // Mutate: flip one gate kind.
    let mut b = a.clone();
    let victim = b
        .net_ids()
        .find(|&id| {
            b.gate(id)
                .map(|g| g.kind == netlist::GateKind::And)
                .unwrap_or(false)
        })
        .expect("an AND gate exists");
    let fanin = b.gate(victim).expect("gate").fanin.clone();
    b.set_driver(
        victim,
        netlist::Gate::new(netlist::GateKind::Or, fanin).expect("arity"),
    )
    .expect("set driver");

    let ca = netlist::CompiledCircuit::compile(&a).expect("compile");
    let cb = netlist::CompiledCircuit::compile(&b).expect("compile");
    let mut solver = Solver::new();
    let (bind, vars) = bind_fresh(&mut solver, &a.comb_inputs());
    let la = encode(&mut solver, &ca, &bind);
    let lb = encode(&mut solver, &cb, &bind);
    let diffs: Vec<cdcl::Lit> = a
        .comb_outputs()
        .iter()
        .map(|o| attacks::cnf::encode_xor(&mut solver, la[o.index()], lb[o.index()]))
        .collect();
    solver.add_clause(&diffs);
    assert_eq!(solver.solve(), SolveResult::Sat);
    let input: Vec<bool> = vars
        .iter()
        .map(|&v| solver.value(v).unwrap_or(false))
        .collect();
    let sa = CombSim::new(&a).expect("sim");
    let sb = CombSim::new(&b).expect("sim");
    assert_ne!(
        sa.eval_bools(&input),
        sb.eval_bools(&input),
        "solver model must be a genuine counterexample"
    );
}

/// Accumulating I/O constraints narrows the key space down to functionally
/// correct keys: after constraining with the full truth table, every model
/// unlocks the circuit.
#[test]
fn full_truth_table_constraints_force_correct_keys() {
    let original = netlist::samples::ripple_adder(3); // 6 inputs
    let locked = locking::weighted::lock(
        &original,
        &locking::weighted::WllConfig {
            key_bits: 6,
            control_width: 3,
            seed: 3,
        },
    )
    .expect("lock");
    let data: Vec<netlist::NetId> = locked
        .circuit
        .comb_inputs()
        .into_iter()
        .filter(|n| !locked.key_inputs.contains(n))
        .collect();
    let orig_sim = CombSim::new(&original).expect("sim");
    let locked_cc = netlist::CompiledCircuit::compile(&locked.circuit).expect("compile");
    let mut solver = Solver::new();
    let (kbind, kvars) = bind_fresh(&mut solver, &locked.key_inputs);
    for m in 0..64u32 {
        let x: Vec<bool> = (0..6).map(|k| (m >> k) & 1 == 1).collect();
        let y = orig_sim.eval_bools(&x);
        add_io_constraint(
            &mut solver,
            &locked_cc,
            &data,
            &kbind,
            &x,
            &y,
            &locked.circuit.comb_outputs(),
        );
    }
    // Enumerate a few models; each must be a working key.
    let mut found = 0;
    while solver.solve() == SolveResult::Sat && found < 4 {
        let key: Vec<bool> = kvars
            .iter()
            .map(|&v| solver.value(v).unwrap_or(false))
            .collect();
        assert!(
            attacks::key_is_functionally_correct(&locked, &key, 4096).expect("simulable"),
            "model key {key:?} must unlock"
        );
        found += 1;
        // Block this key to find another.
        let block: Vec<cdcl::Lit> = kvars
            .iter()
            .zip(&key)
            .map(|(&v, &b)| v.lit(!b))
            .collect();
        if !solver.add_clause(&block) {
            break;
        }
    }
    assert!(found >= 1, "at least the correct key must satisfy");
}

/// Incremental solving across many small queries stays consistent with
/// from-scratch solving (the usage pattern of the sensitization attack).
#[test]
fn incremental_assumption_queries_are_consistent() {
    let c = netlist::generate::random_comb(53, 8, 4, 100).expect("generate");
    let cc = netlist::CompiledCircuit::compile(&c).expect("compile");
    let mut solver = Solver::new();
    let (bind, vars) = bind_fresh(&mut solver, &c.comb_inputs());
    let lits = encode(&mut solver, &cc, &bind);
    let out0 = lits[c.comb_outputs()[0].index()];
    let sim = CombSim::new(&c).expect("sim");
    let mut rng = SplitMix64::new(4);
    for _ in 0..24 {
        let input: Vec<bool> = (0..8).map(|_| rng.bool()).collect();
        let expect = sim.eval_bools(&input)[0];
        let mut assumptions: Vec<cdcl::Lit> = vars
            .iter()
            .zip(&input)
            .map(|(&v, &b)| v.lit(b))
            .collect();
        // Asking for the observed value must be SAT…
        assumptions.push(if expect { out0 } else { !out0 });
        assert_eq!(solver.solve_with(&assumptions), SolveResult::Sat);
        // …and for the complement UNSAT.
        *assumptions.last_mut().expect("non-empty") = if expect { !out0 } else { out0 };
        assert_eq!(solver.solve_with(&assumptions), SolveResult::Unsat);
    }
}
