//! Property-based tests (qcheck) over the workspace's core invariants.
//!
//! Failures print a replayable case seed; persist one by appending
//! `<property_name> 0x<seed>` to the workspace-root `.qcheck-regressions`
//! file (see DESIGN.md §"Hermetic build policy").

use gatesim::{equiv, CombSim};
use lfsr::{KeySequence, LfsrConfig, UnlockSchedule};
use qcheck::{any_bool, any_u8, vec_of, Gen};

/// Strategy: a small random combinational circuit description.
fn circuit_params() -> impl Gen<Value = (u64, usize, usize, usize)> {
    (0u64..5000, 3usize..10, 2usize..6, 20usize..120)
}

/// Shared body of `generated_circuits_simulate_consistently`, reused by the
/// pinned regression case below.
fn check_simulation_consistency(
    (seed, inputs, outputs, gates): (u64, usize, usize, usize),
    pattern_seed: u64,
) -> Result<(), String> {
    let c = netlist::generate::random_comb(seed, inputs, outputs, gates).unwrap();
    c.validate().unwrap();
    let sim = CombSim::new(&c).unwrap();
    let lv = netlist::Levelization::build(&c).unwrap();
    let mut rng = netlist::rng::SplitMix64::new(pattern_seed);
    let input: Vec<bool> = (0..inputs).map(|_| rng.bool()).collect();
    let fast = sim.eval_bools(&input);
    // Reference: direct gate-kind evaluation in topological order.
    let mut vals = vec![false; c.num_nets()];
    for (net, &v) in c.comb_inputs().iter().zip(&input) {
        vals[net.index()] = v;
    }
    for &id in lv.order() {
        if let Some(g) = c.gate(id) {
            vals[id.index()] = g.kind.eval(g.fanin.iter().map(|f| vals[f.index()]));
        }
    }
    let slow: Vec<bool> = c.comb_outputs().iter().map(|o| vals[o.index()]).collect();
    qcheck::prop_assert_eq!(fast, slow);
    Ok(())
}

/// Pinned historical counterexample, ported from the retired
/// `property_invariants.proptest-regressions` file (`cc 72198ff1…` shrank
/// to `(seed, inputs, outputs, gates) = (3279, 9, 2, 35)`).
#[test]
fn regression_shrunk_case_3279_9_2_35() {
    for pattern_seed in 0..32 {
        check_simulation_consistency((3279, 9, 2, 35), pattern_seed)
            .unwrap_or_else(|e| panic!("pinned regression case failed: {e}"));
    }
    // The same circuit parameters must also round-trip through `.bench`.
    let c = netlist::generate::random_comb(3279, 9, 2, 35).unwrap();
    let parsed = netlist::bench::parse(&netlist::bench::write(&c)).unwrap();
    assert_eq!(equiv::check_random(&c, &parsed, 512, 3279).unwrap(), None);
}

qcheck::props! {
    config = qcheck::Config::with_cases(24);

    /// Generated circuits always validate and simulate consistently between
    /// the bit-parallel simulator and the netlist's own gate evaluation.
    fn generated_circuits_simulate_consistently(
        params in circuit_params(),
        pattern_seed in 0u64..1000,
    ) {
        check_simulation_consistency(params, pattern_seed)?;
    }

    /// `.bench` write→parse round-trips preserve the circuit function.
    fn bench_roundtrip_preserves_function(
        (seed, inputs, outputs, gates) in circuit_params(),
    ) {
        let c = netlist::generate::random_comb(seed, inputs, outputs, gates).unwrap();
        let parsed = netlist::bench::parse(&netlist::bench::write(&c)).unwrap();
        qcheck::prop_assert_eq!(equiv::check_random(&c, &parsed, 512, seed).unwrap(), None);
    }

    /// AIG encoding and the full optimization pipeline preserve function.
    fn synthesis_pipeline_preserves_function(
        (seed, inputs, outputs, gates) in circuit_params(),
    ) {
        let c = netlist::generate::random_comb(seed, inputs, outputs, gates).unwrap();
        let aig = aigsynth::Aig::from_circuit(&c).unwrap();
        let opt = aigsynth::optimize_aig(&aig);
        let mut rng = netlist::rng::SplitMix64::new(seed ^ 0xA1);
        for _ in 0..16 {
            let input: Vec<bool> = (0..inputs).map(|_| rng.bool()).collect();
            let sim = CombSim::new(&c).unwrap();
            qcheck::prop_assert_eq!(sim.eval_bools(&input), opt.eval_bools(&input));
        }
        qcheck::prop_assert!(opt.num_ands() <= aig.num_ands());
    }

    /// Every locking scheme preserves the function under its correct key.
    fn locking_preserves_function_under_correct_key(
        (seed, inputs, outputs, gates) in (0u64..5000, 6usize..10, 2usize..6, 60usize..150),
        scheme in 0usize..3,
    ) {
        let c = netlist::generate::random_comb(seed, inputs, outputs, gates).unwrap();
        let locked = match scheme {
            0 => locking::random::lock(
                &c,
                &locking::random::RllConfig { key_bits: 6, seed },
            )
            .unwrap(),
            1 => locking::weighted::lock(
                &c,
                &locking::weighted::WllConfig {
                    key_bits: 6,
                    control_width: 3,
                    seed,
                },
            )
            .unwrap(),
            _ => locking::point_function::sarlock(
                &c,
                &locking::point_function::SarLockConfig { key_bits: 6, seed },
            )
            .unwrap(),
        };
        qcheck::prop_assert!(locked.verify_against(&c, 512).unwrap());
    }

    /// LFSR symbolic state equals concrete simulation for arbitrary seeds.
    fn lfsr_symbolic_matches_concrete(
        width in 4usize..32,
        num_seeds in 1usize..5,
        gap in 0usize..4,
        seed_bits in vec_of(any_bool(), 4 * 32 * 5),
    ) {
        let cfg = LfsrConfig::with_tap_spacing(width, 8);
        let seeds: Vec<Vec<bool>> = (0..num_seeds)
            .map(|s| (0..width).map(|i| seed_bits[s * width + i]).collect())
            .collect();
        let sched = UnlockSchedule::new(
            cfg,
            KeySequence::new(seeds.clone(), vec![gap; num_seeds]),
        );
        let sym = lfsr::symbolic::SymbolicState::of_schedule(&sched);
        let flat: Vec<bool> = seeds.into_iter().flatten().collect();
        qcheck::prop_assert_eq!(sym.eval(&flat), sched.derive_key());
    }

    /// Key-sequence solving reaches any requested key when all cells are
    /// reseeding points.
    fn key_sequence_solver_reaches_target(
        width in 4usize..24,
        target_bits in vec_of(any_bool(), 24),
    ) {
        let cfg = LfsrConfig::with_tap_spacing(width, 8);
        let shape = KeySequence::new(vec![vec![false; width]; 2], vec![1; 2]);
        let sched = UnlockSchedule::new(cfg.clone(), shape);
        let target: Vec<bool> = target_bits[..width].to_vec();
        let solved = sched.solve_seeds_for_key(&target);
        qcheck::prop_assert!(solved.is_some());
        let run = UnlockSchedule::new(cfg, solved.unwrap());
        qcheck::prop_assert_eq!(run.derive_key(), target);
    }

    /// The CDCL solver agrees with brute force on random small CNFs.
    fn solver_agrees_with_brute_force(
        num_vars in 3usize..10,
        clause_data in vec_of((0usize..10, 0usize..10, 0usize..10, any_u8()), 5..40),
    ) {
        use cdcl::{SolveResult, Solver, Var};
        let clauses: Vec<Vec<cdcl::Lit>> = clause_data
            .iter()
            .map(|&(a, b, c, signs)| {
                [(a, 1), (b, 2), (c, 4)]
                    .iter()
                    .map(|&(v, bit)| Var::from_index(v % num_vars).lit(signs & bit != 0))
                    .collect()
            })
            .collect();
        // Brute force.
        let mut expect_sat = false;
        'outer: for m in 0u64..(1 << num_vars) {
            for cl in &clauses {
                if !cl.iter().any(|l| ((m >> l.var().index()) & 1 == 1) == l.is_positive()) {
                    continue 'outer;
                }
            }
            expect_sat = true;
            break;
        }
        let mut s = Solver::new();
        for _ in 0..num_vars {
            s.new_var();
        }
        let mut dead = false;
        for cl in &clauses {
            if !s.add_clause(cl) {
                dead = true;
            }
        }
        let got = if dead { SolveResult::Unsat } else { s.solve() };
        qcheck::prop_assert_eq!(got == SolveResult::Sat, expect_sat);
    }

    /// PODEM-generated tests always detect their target fault.
    fn podem_tests_detect_their_faults(
        (seed, inputs, outputs, gates) in (0u64..2000, 4usize..9, 2usize..5, 30usize..90),
    ) {
        let c = netlist::generate::random_comb(seed, inputs, outputs, gates).unwrap();
        let faults = atpg::collapse(&c, atpg::enumerate_faults(&c));
        let mut podem = atpg::podem::Podem::new(&c, 2000).unwrap();
        let mut fsim = atpg::fsim::FaultSim::new(&c).unwrap();
        for f in faults.iter().take(25) {
            if let atpg::podem::Outcome::Test(pattern) = podem.generate(f) {
                qcheck::prop_assert!(fsim.detects(&pattern, f), "fault {}", f);
            }
        }
    }
}
