//! Quickstart: protect a design with OraP + weighted logic locking, unlock
//! the chip model, and watch the scan interface deny the oracle.
//!
//! Run with: `cargo run --example quickstart`

use orap::chip::ProtectedChip;
use orap::{protect, OrapConfig, OrapVariant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A design to protect: a 16-bit counter (any netlist works; see the
    //    other examples for the paper's benchmark-scale circuits).
    let design = netlist::samples::counter(16);
    println!("design: {}", netlist::CircuitStats::of(&design));

    // 2. Lock it with weighted logic locking and wrap the key register in
    //    the OraP scheme (Fig. 1 of the paper).
    let protected = protect(
        &design,
        &locking::weighted::WllConfig {
            key_bits: 24,
            control_width: 3,
            seed: 42,
        },
        &OrapConfig {
            variant: OrapVariant::Basic,
            ..OrapConfig::default()
        },
    )?;
    println!(
        "locked with {}-bit key; unlock takes {} cycles; OraP adds {} gates",
        protected.key_bits(),
        protected.unlock_cycles(),
        protected.hardware.gates()
    );

    // 3. Fabricate (model) the chip and unlock it the way the legitimate
    //    owner would: play the key sequence from the tamper-proof memory.
    let mut chip = ProtectedChip::new(&protected)?;
    assert!(!chip.key_register_holds_correct_key());
    chip.power_on_and_unlock();
    assert!(chip.key_register_holds_correct_key());
    println!("chip unlocked: key register holds the correct key");

    // 4. Functional operation now matches the original design.
    chip.set_state_ffs(&[false; 16]);
    let mut reference = gatesim::SeqSim::new(&design)?;
    for cycle in 0..5 {
        let out = chip.clock(&[true], &vec![false; chip.num_scan_chains()]);
        let want = reference.step(&[true]);
        assert_eq!(out.outputs, want);
        println!("cycle {cycle}: outputs match the unlocked design");
    }

    // 5. The moment scan mode is entered, the pulse generators clear the
    //    key register — before the first shift.
    chip.set_scan_enable(true);
    chip.clock(&[false], &vec![false; chip.num_scan_chains()]);
    assert!(!chip.key_register_holds_correct_key());
    println!("scan_enable asserted: key register self-cleared; the chip is locked while scannable");

    // 6. Therefore every scan-based oracle query returns locked responses.
    let mut checked = 0;
    let mut correct = 0;
    let chip2 = ProtectedChip::new(&protected)?;
    let mut oracle =
        orap::chip::ProtectedChipOracle::new(chip2, orap::chip::OracleMode::Naive);
    let mut rng = netlist::rng::SplitMix64::new(7);
    for _ in 0..32 {
        let input: Vec<bool> = (0..17).map(|_| rng.bool()).collect();
        if oracle.response_is_correct(&input)? {
            correct += 1;
        }
        checked += 1;
    }
    println!(
        "scan oracle check: {correct}/{checked} responses matched the true function \
         (locked-circuit responses only)"
    );
    Ok(())
}
