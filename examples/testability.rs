//! Testability of OraP-protected circuits (the Table II story): the chip is
//! tested *locked*, but because the key register sits on the scan chains the
//! ATPG tool may drive the key inputs freely — key gates become control
//! points and fault coverage *improves*.
//!
//! Run with: `cargo run --release --example testability`

use atpg::{run_atpg, AtpgConfig};
use locking::weighted::WllConfig;
use orap::{protect, OrapConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A scaled-down synthetic benchmark in the b20 profile.
    let profile = netlist::generate::profile(netlist::generate::BenchmarkId::B20).scaled(0.02);
    let design = netlist::generate::synthesize(&profile)?;
    println!(
        "circuit: {} gates, {} comb inputs, {} comb outputs",
        design.num_gates_excluding_inverters(),
        design.comb_inputs().len(),
        design.comb_outputs().len()
    );

    let cfg = AtpgConfig::default();
    let original = run_atpg(&design, &cfg)?;
    println!(
        "original : FC = {:6.2}%  (total {} faults, {} redundant + {} aborted)",
        original.coverage_percent(),
        original.total_faults,
        original.redundant,
        original.aborted
    );

    let protected = protect(
        &design,
        &WllConfig {
            key_bits: 16,
            control_width: 3,
            seed: 3,
        },
        &OrapConfig::default(),
    )?;
    // ATPG sees the locked combinational part with key inputs as free
    // (scan-controllable) inputs — exactly the paper's Table II setting.
    let locked_report = run_atpg(&protected.locked.circuit, &cfg)?;
    println!(
        "protected: FC = {:6.2}%  (total {} faults, {} redundant + {} aborted)",
        locked_report.coverage_percent(),
        locked_report.total_faults,
        locked_report.redundant,
        locked_report.aborted
    );
    println!(
        "key inputs acting as test control points: {} -> {} redundant+aborted",
        original.redundant_plus_aborted(),
        locked_report.redundant_plus_aborted()
    );
    Ok(())
}
