//! The tug of war, end to end: the SAT attack (and friends) demolish
//! conventional locking through the scan oracle, SARLock resists at the
//! price of corruptibility — and OraP removes the oracle altogether.
//!
//! Run with: `cargo run --release --example sat_attack_demo`

use attacks::{appsat, hill_climbing, sat, CombOracle, Oracle};
use locking::weighted::WllConfig;
use orap::chip::{OracleMode, ProtectedChip, ProtectedChipOracle};
use orap::{protect, OrapConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = netlist::generate::random_comb(2024, 12, 8, 400)?;
    println!("victim: {} gates, 12 inputs", design.num_gates());

    // --- Act 1: conventional WLL with an unprotected scan oracle. ---------
    let wll = WllConfig {
        key_bits: 12,
        control_width: 3,
        seed: 9,
    };
    let locked = locking::weighted::lock(&design, &wll)?;
    let mut oracle = CombOracle::from_locked(&locked)?;
    let out = sat::attack(&locked, &mut oracle, &sat::SatAttackConfig::default());
    match &out.key {
        Some(key) => {
            let ok = attacks::key_is_functionally_correct(&locked, key, 4096)?;
            println!(
                "SAT attack vs WLL + open scan: key recovered in {} DIPs \
                 ({} oracle queries), functionally correct: {ok}",
                out.iterations, out.oracle_queries
            );
        }
        None => println!("SAT attack unexpectedly failed: {:?}", out.failure),
    }

    // Hill climbing also works against the open oracle.
    let mut oracle = CombOracle::from_locked(&locked)?;
    let hc = hill_climbing::attack(&locked, &mut oracle, &hill_climbing::HillClimbConfig::default());
    println!(
        "hill climbing vs WLL + open scan: success = {}",
        hc.succeeded()
    );

    // --- Act 2: SARLock resists the SAT attack... ------------------------
    let sar = locking::point_function::sarlock(
        &design,
        &locking::point_function::SarLockConfig {
            key_bits: 12,
            seed: 4,
        },
    )?;
    let mut oracle = CombOracle::from_locked(&sar)?;
    let capped = sat::attack(
        &sar,
        &mut oracle,
        &sat::SatAttackConfig {
            max_iterations: 128,
            conflict_budget: None,
        },
    );
    println!(
        "SAT attack vs SARLock (128-DIP cap): {:?} after {} DIPs — \
         needs ~2^12 distinguishing inputs",
        capped.failure, capped.iterations
    );
    // ...but its output corruptibility is negligible:
    let hd = gatesim::hd::average_hd_random_keys(
        &sar.circuit,
        &sar.key_inputs,
        &sar.correct_key,
        10,
        4096,
        3,
    )?;
    println!("SARLock corruptibility: average HD = {hd:.4}% (useless as obfuscation)");

    // AppSAT strips compound schemes down to their point function:
    let mut oracle = CombOracle::from_locked(&sar)?;
    let app = appsat::attack(&sar, &mut oracle, &appsat::AppSatConfig::default());
    println!(
        "AppSAT vs SARLock: returned {} after {} iterations",
        if app.succeeded() { "an approximate key" } else { "nothing" },
        app.iterations
    );

    // --- Act 3: OraP protects the oracle, not the netlist. ----------------
    let seq_design = netlist::samples::counter(12);
    let protected = protect(&seq_design, &wll, &OrapConfig::default())?;
    let chip = ProtectedChip::new(&protected)?;

    // A knowledgeable attacker (strict mode): no oracle, attack dies at the
    // first query.
    let mut strict = ProtectedChipOracle::new(chip.clone(), OracleMode::Strict);
    let out = sat::attack(&protected.locked, &mut strict, &sat::SatAttackConfig::default());
    println!(
        "SAT attack vs OraP chip (strict): {:?} after {} iteration(s)",
        out.failure, out.iterations
    );

    // A naive attacker consumes the locked responses — and recovers a key
    // that does not unlock anything.
    let mut naive = ProtectedChipOracle::new(chip, OracleMode::Naive);
    let out = sat::attack(&protected.locked, &mut naive, &sat::SatAttackConfig::default());
    match &out.key {
        Some(key) => {
            let ok = attacks::key_is_functionally_correct(&protected.locked, key, 4096)?;
            println!(
                "SAT attack vs OraP chip (naive, {} queries): extracted a key — \
                 functionally correct: {ok} (the locked responses poisoned it)",
                naive.queries_attempted()
            );
        }
        None => println!(
            "SAT attack vs OraP chip (naive): no key ({:?})",
            out.failure
        ),
    }

    // Meanwhile the OraP design keeps WLL's high corruptibility:
    let hd = gatesim::hd::average_hd_random_keys(
        &protected.locked.circuit,
        &protected.locked.key_inputs,
        &protected.locked.correct_key,
        10,
        4096,
        3,
    )?;
    println!("OraP + WLL corruptibility: average HD = {hd:.2}%");
    Ok(())
}
