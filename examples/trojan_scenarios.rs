//! Walks through the paper's Section III threat scenarios (a)–(e) on the
//! chip model: what each Trojan buys the attacker, what it costs in payload
//! gates under the baseline versus the hardened design guidelines, and
//! whether the side-channel detection model catches it.
//!
//! Run with: `cargo run --release --example trojan_scenarios`

use orap::chip::ProtectedChip;
use orap::threat::{
    arm, extract_key_via_scan, one_shot_query_with_frozen_ffs, payload_cost, DesignPosture,
    SideChannelModel, ThreatScenario,
};
use orap::{protect, OrapConfig, OrapVariant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = netlist::samples::counter(16);
    let wll = locking::weighted::WllConfig {
        key_bits: 24,
        control_width: 3,
        seed: 11,
    };
    let basic = protect(&design, &wll, &OrapConfig::default())?;
    let modified = protect(
        &design,
        &wll,
        &OrapConfig {
            variant: OrapVariant::Modified,
            ..OrapConfig::default()
        },
    )?;
    let detector = SideChannelModel::default();

    println!("Trojan payload costs ({}-bit key register):", basic.key_bits());
    println!(
        "{:38} {:>10} {:>10} {:>9}",
        "scenario", "baseline", "hardened", "detected?"
    );
    for scenario in ThreatScenario::ALL {
        let base = payload_cost(&basic, scenario, DesignPosture::Baseline);
        let hard = payload_cost(&basic, scenario, DesignPosture::Hardened);
        println!(
            "{:38} {:>10} {:>10} {:>9}",
            scenario.label(),
            base,
            hard,
            if detector.detects(hard) { "yes" } else { "no" }
        );
    }
    println!();

    // (a) On an honest chip the scan-out leaks nothing; with the per-cell
    // resets suppressed, the key rides out on the scan pins.
    let mut honest = ProtectedChip::new(&basic)?;
    let leaked = extract_key_via_scan(&mut honest);
    println!(
        "(a) honest chip scan-out: key leaked = {}",
        leaked == basic.locked.correct_key
    );
    let mut trojaned = ProtectedChip::new(&basic)?;
    arm(&mut trojaned, ThreatScenario::SuppressPerCellReset);
    let leaked = extract_key_via_scan(&mut trojaned);
    println!(
        "(a) reset-suppressed chip: key leaked = {} (payload {} GE -> detectable)",
        leaked == basic.locked.correct_key,
        payload_cost(&basic, ThreatScenario::SuppressPerCellReset, DesignPosture::Hardened)
    );
    println!();

    // (e) The frozen-flip-flop one-shot query: works against the basic
    // scheme, collapses against the modified scheme because the unlock
    // process *needs* the live responses.
    let state: Vec<bool> = (0..16).map(|i| i % 3 == 0).collect();
    let mut reference = gatesim::SeqSim::new(&design)?;
    reference.set_state(&state);
    reference.step(&[true]);

    let mut chip_basic = ProtectedChip::new(&basic)?;
    arm(&mut chip_basic, ThreatScenario::FreezeStateFfs);
    let (_, captured) = one_shot_query_with_frozen_ffs(&mut chip_basic, &state, &[true]);
    println!(
        "(e) vs BASIC scheme: captured response correct = {}",
        captured == reference.state()
    );

    let mut chip_mod = ProtectedChip::new(&modified)?;
    arm(&mut chip_mod, ThreatScenario::FreezeStateFfs);
    let (_, captured) = one_shot_query_with_frozen_ffs(&mut chip_mod, &state, &[true]);
    println!(
        "(e) vs MODIFIED scheme: captured response correct = {} — \
         freezing the flip-flops corrupted the key itself",
        captured == reference.state()
    );
    let mut chip_mod2 = ProtectedChip::new(&modified)?;
    arm(&mut chip_mod2, ThreatScenario::FreezeStateFfs);
    chip_mod2.power_on_and_unlock();
    println!(
        "(e) modified-scheme unlock under the Trojan: key register correct = {}",
        chip_mod2.key_register_holds_correct_key()
    );
    Ok(())
}
