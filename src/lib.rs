//! Meta-crate re-exporting the whole OraP reproduction workspace.
//!
//! See the individual crates for documentation:
//! [`orap`] (the paper's contribution), [`netlist`], [`gatesim`], [`lfsr`],
//! [`cdcl`], [`aigsynth`], [`atpg`], [`locking`] and [`attacks`].
pub use aigsynth;
pub use atpg;
pub use attacks;
pub use cdcl;
pub use gatesim;
pub use lfsr;
pub use locking;
pub use netlist;
pub use orap;
